"""Tests for surrogates, feasibility model, and acquisition functions."""

import numpy as np
import pytest

from repro.bayesopt.acquisition import (
    constrained_expected_improvement,
    expected_improvement,
    probability_of_feasibility,
    upper_confidence_bound,
)
from repro.bayesopt.surrogate import (
    FeasibilityModel,
    GaussianProcessSurrogate,
    RandomForestSurrogate,
)
from repro.errors import DesignSpaceError


def _toy_regression(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3, 3, (n, 2))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
    return X, y


class TestRandomForestSurrogate:
    def test_fit_predict_shapes(self):
        X, y = _toy_regression()
        surrogate = RandomForestSurrogate(seed=0).fit(X, y)
        mean, std = surrogate.predict(X[:10])
        assert mean.shape == (10,) and std.shape == (10,)

    def test_std_positive(self):
        X, y = _toy_regression()
        _, std = RandomForestSurrogate(seed=0).fit(X, y).predict(X[:5])
        assert np.all(std > 0)

    def test_interpolates_reasonably(self):
        X, y = _toy_regression(n=200)
        surrogate = RandomForestSurrogate(seed=0).fit(X, y)
        mean, _ = surrogate.predict(X)
        assert np.corrcoef(mean, y)[0, 1] > 0.9

    def test_empty_fit_raises(self):
        with pytest.raises(DesignSpaceError):
            RandomForestSurrogate().fit(np.empty((0, 2)), np.empty(0))


class TestGaussianProcessSurrogate:
    def test_posterior_interpolates_training_points(self):
        X, y = _toy_regression(n=30)
        gp = GaussianProcessSurrogate(noise_variance=1e-8).fit(X, y)
        mean, std = gp.predict(X)
        assert np.allclose(mean, y, atol=1e-2)
        assert np.all(std >= 0)

    def test_uncertainty_grows_away_from_data(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        gp = GaussianProcessSurrogate(length_scale=0.5).fit(X, y)
        _, std_near = gp.predict(np.array([[0.5]]))
        _, std_far = gp.predict(np.array([[10.0]]))
        assert std_far > std_near

    def test_unfit_raises(self):
        with pytest.raises(DesignSpaceError):
            GaussianProcessSurrogate().predict(np.ones((1, 2)))

    def test_bad_variance_raises(self):
        with pytest.raises(DesignSpaceError):
            GaussianProcessSurrogate(signal_variance=0.0)


class TestFeasibilityModel:
    def test_learns_half_plane(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (200, 2))
        feasible = X[:, 0] > 0
        model = FeasibilityModel(seed=0).fit(X, feasible)
        prob_pos = model.predict_proba(np.array([[0.8, 0.0]]))
        prob_neg = model.predict_proba(np.array([[-0.8, 0.0]]))
        assert prob_pos[0] > 0.7
        assert prob_neg[0] < 0.3

    def test_constant_labels(self):
        X = np.ones((5, 2))
        model = FeasibilityModel(seed=0).fit(X, np.ones(5, dtype=bool))
        assert np.allclose(model.predict_proba(X), 1.0)
        model = FeasibilityModel(seed=0).fit(X, np.zeros(5, dtype=bool))
        assert np.allclose(model.predict_proba(X), 0.0)

    def test_empty_raises(self):
        with pytest.raises(DesignSpaceError):
            FeasibilityModel().fit(np.empty((0, 2)), np.empty(0, dtype=bool))


class TestAcquisition:
    def test_ei_zero_when_hopeless(self):
        ei = expected_improvement(np.array([0.0]), np.array([1e-9]), best=10.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_ei_positive_when_promising(self):
        ei = expected_improvement(np.array([1.0]), np.array([0.5]), best=0.0)
        assert ei[0] > 0.9

    def test_ei_grows_with_uncertainty(self):
        low = expected_improvement(np.array([0.0]), np.array([0.1]), best=0.5)
        high = expected_improvement(np.array([0.0]), np.array([2.0]), best=0.5)
        assert high[0] > low[0]

    def test_ei_degenerate_std_uses_plain_improvement(self):
        ei = expected_improvement(np.array([2.0]), np.array([0.0]), best=1.0)
        assert ei[0] == pytest.approx(1.0)

    def test_ucb(self):
        ucb = upper_confidence_bound(np.array([1.0]), np.array([0.5]), beta=2.0)
        assert ucb[0] == pytest.approx(2.0)

    def test_pof_clamped(self):
        out = probability_of_feasibility(np.array([-0.5, 0.5, 1.5]), floor=0.1)
        assert np.array_equal(out, [0.1, 0.5, 1.0])

    def test_constrained_ei_without_incumbent_is_pof(self):
        pof = np.array([0.2, 0.9])
        scores = constrained_expected_improvement(
            np.zeros(2), np.ones(2), best_feasible=None, pof=pof
        )
        assert np.array_equal(scores, np.clip(pof, 0.01, 1.0))

    def test_constrained_ei_scales_by_pof(self):
        mean = np.array([1.0, 1.0])
        std = np.array([0.5, 0.5])
        scores = constrained_expected_improvement(
            mean, std, best_feasible=0.0, pof=np.array([1.0, 0.5])
        )
        assert scores[0] == pytest.approx(2 * scores[1], rel=1e-6)
