"""Tests for the parallel batched evaluation engine.

The headline property: for any worker count, :class:`ParallelEvaluator`
reproduces the serial ``BayesianOptimizer.run`` history bit for bit, as
long as the objective is a deterministic function of the configuration.
"""

import threading
import time

import pytest

from repro.bayesopt.cache import EvaluationCache
from repro.bayesopt.optimizer import BayesianOptimizer
from repro.bayesopt.parallel import ParallelEvaluator
from repro.bayesopt.results import Evaluation
from repro.bayesopt.space import Categorical, DesignSpace, Integer, Real
from repro.errors import DesignSpaceError


def quadratic(config):
    return float(-(config["x"] - 3) ** 2 - (config["y"] + 2) ** 2)


def constrained(config):
    feasible = config["x"] + config["y"] <= 5
    return Evaluation(config=config, objective=quadratic(config), feasible=feasible)


def _history(result):
    return [(e.config, e.objective, e.feasible) for e in result.history]


@pytest.fixture
def space():
    return DesignSpace([Integer("x", -10, 10), Integer("y", -10, 10)])


class TestSerialEquivalence:
    """Same seed => same trajectory, for every worker count."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_identical_history_to_serial(self, space, k):
        serial = BayesianOptimizer(space, quadratic, warmup=4, seed=11).run(15)
        engine = ParallelEvaluator(space, quadratic, n_workers=k, warmup=4, seed=11)
        assert _history(engine.run(15)) == _history(serial)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_identical_history_with_feasibility(self, space, k):
        serial = BayesianOptimizer(space, constrained, warmup=4, seed=5).run(14)
        engine = ParallelEvaluator(space, constrained, n_workers=k, warmup=4, seed=5)
        assert _history(engine.run(14)) == _history(serial)

    def test_identical_history_mixed_space(self):
        mixed = DesignSpace(
            [Integer("x", 0, 20), Real("r", 0.0, 1.0), Categorical("c", ("a", "b"))]
        )

        def f(config):
            return float(config["x"] + config["r"] + (config["c"] == "a"))

        serial = BayesianOptimizer(mixed, f, warmup=3, seed=2).run(12)
        engine = ParallelEvaluator(mixed, f, n_workers=3, warmup=3, seed=2)
        assert _history(engine.run(12)) == _history(serial)

    def test_batch_size_does_not_change_history(self, space):
        serial = BayesianOptimizer(space, quadratic, warmup=4, seed=7).run(12)
        for batch in (1, 3, 6):
            engine = ParallelEvaluator(
                space, quadratic, n_workers=2, batch_size=batch, warmup=4, seed=7
            )
            assert _history(engine.run(12)) == _history(serial)

    def test_engine_runs_repeatedly(self, space):
        engine = ParallelEvaluator(space, quadratic, n_workers=2, warmup=4, seed=7)
        first = engine.run(8)
        assert len(first) == 8  # a second run continues from fresh RNG state


class TestEngineBehavior:
    def test_budget_respected(self, space):
        for budget in (1, 5, 9):
            engine = ParallelEvaluator(space, quadratic, n_workers=4, warmup=3, seed=0)
            assert len(engine.run(budget)) == budget

    def test_evaluations_actually_run_concurrently(self, space):
        active = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def slow(config):
            with lock:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            time.sleep(0.03)
            with lock:
                active["now"] -= 1
            return quadratic(config)

        engine = ParallelEvaluator(space, slow, n_workers=4, warmup=6, seed=0)
        engine.run(8)
        assert active["peak"] >= 2  # warmup batch overlaps in the pool

    def test_stats_reported(self, space):
        engine = ParallelEvaluator(space, quadratic, n_workers=2, warmup=3, seed=1)
        engine.run(10)
        assert engine.stats["rounds"] >= 1
        assert engine.stats["evaluated"] >= 10

    def test_shared_cache_skips_known_configs(self, space):
        cache = EvaluationCache()
        calls = []

        def counting(config):
            calls.append(dict(config))
            return quadratic(config)

        ParallelEvaluator(
            space, counting, n_workers=2, warmup=3, seed=4, cache=cache
        ).run(10)
        first_calls = len(calls)
        # A second engine with the same seed replays entirely from cache.
        ParallelEvaluator(
            space, counting, n_workers=2, warmup=3, seed=4, cache=cache
        ).run(10)
        assert len(calls) == first_calls

    def test_bad_arguments_raise(self, space):
        with pytest.raises(DesignSpaceError):
            ParallelEvaluator(space, quadratic, n_workers=0)
        with pytest.raises(DesignSpaceError):
            ParallelEvaluator(space, quadratic, n_workers=1, batch_size=0)
        with pytest.raises(DesignSpaceError):
            ParallelEvaluator(space, quadratic, executor="fiber")
        with pytest.raises(DesignSpaceError):
            ParallelEvaluator(space, quadratic).run(0)

    def test_objective_error_propagates(self, space):
        engine = ParallelEvaluator(space, lambda c: "oops", n_workers=2, seed=0)
        with pytest.raises(DesignSpaceError):
            engine.run(4)

    def test_speculative_failures_do_not_abort_the_run(self, space):
        # An objective that raises on part of the space: the run must only
        # fail if the *serial* trajectory reaches a raising config — purely
        # speculative failures are discarded.  Serial completing means the
        # parallel engine must too, with the identical history.
        def partial(config):
            if config["x"] > 0 and config["y"] > 0:
                raise RuntimeError("unlowerable region")
            return quadratic(config)

        # Seed 1: the serial trajectory avoids the region, but speculation
        # wanders into it (stats report the discarded failures).
        serial = BayesianOptimizer(space, partial, warmup=4, seed=1).run(12)
        engine = ParallelEvaluator(space, partial, n_workers=4, warmup=4, seed=1)
        assert _history(engine.run(12)) == _history(serial)
        assert engine.stats["speculative_failures"] >= 1


class TestRespeculation:
    """Divergences refill the pool with a fresh believer batch; the
    trajectory must not move, only the prefetch hit rate."""

    @pytest.mark.parametrize("seed", [0, 5, 11])
    def test_hit_rate_improves_without_changing_history(self, space, seed):
        serial = BayesianOptimizer(space, quadratic, warmup=4, seed=seed).run(15)
        stats = {}
        for flag in (False, True):
            engine = ParallelEvaluator(
                space, quadratic, n_workers=4, warmup=4, seed=seed,
                respeculate=flag,
            )
            assert _history(engine.run(15)) == _history(serial)
            stats[flag] = dict(engine.stats)
        assert stats[True]["speculative_hits"] > stats[False]["speculative_hits"]
        assert stats[True]["respeculations"] >= 1
        assert stats[False]["respeculations"] == 0

    def test_respeculated_failures_are_discarded(self, space):
        # Same contract as plain speculation: only the exact next serial
        # config may abort the run, even when it is pool-evaluated at a
        # divergence alongside respeculated believers.
        def partial(config):
            if config["x"] > 0 and config["y"] > 0:
                raise RuntimeError("unlowerable region")
            return quadratic(config)

        serial = BayesianOptimizer(space, partial, warmup=4, seed=1).run(12)
        engine = ParallelEvaluator(space, partial, n_workers=4, warmup=4, seed=1)
        assert _history(engine.run(12)) == _history(serial)


class TestProcessExecutor:
    def test_process_pool_matches_serial(self, space):
        serial = BayesianOptimizer(space, quadratic, warmup=3, seed=6).run(8)
        engine = ParallelEvaluator(
            space, quadratic, n_workers=2, warmup=3, seed=6, executor="process"
        )
        assert _history(engine.run(8)) == _history(serial)


class TestSuggestBatch:
    def test_returns_n_distinct_configs_under_dedupe(self, space):
        opt = BayesianOptimizer(space, quadratic, warmup=3, seed=0, dedupe=True)
        result = opt.run(6)  # past warmup: batch comes from the acquisition
        batch = opt.suggest_batch(result, 5)
        assert len(batch) == 5
        keys = {space.key(c) for c in batch}
        assert len(keys) == 5
        evaluated = {space.key(e.config) for e in result.history}
        assert not keys & evaluated

    def test_first_element_matches_serial_suggest(self, space):
        opt = BayesianOptimizer(space, quadratic, warmup=3, seed=9)
        result = opt.run(7)
        batch = opt.fork().suggest_batch(result, 4)
        nxt = opt.suggest(result)
        assert space.key(batch[0]) == space.key(nxt)

    def test_does_not_mutate_history(self, space):
        opt = BayesianOptimizer(space, quadratic, warmup=3, seed=0)
        result = opt.run(5)
        before = _history(result)
        opt.suggest_batch(result, 4)
        assert _history(result) == before

    def test_bad_batch_size_raises(self, space):
        opt = BayesianOptimizer(space, quadratic, warmup=3, seed=0)
        with pytest.raises(DesignSpaceError):
            opt.suggest_batch(opt.run(4), 0)


class TestForkSnapshot:
    def test_fork_does_not_consume_parent_rng(self, space):
        from repro.bayesopt.results import OptimizationResult

        a = BayesianOptimizer(space, quadratic, warmup=3, seed=42)
        b = BayesianOptimizer(space, quadratic, warmup=3, seed=42)
        fork = a.fork()
        fork.suggest_batch(OptimizationResult(), 3)  # burns only the fork's RNG
        assert _history(a.run(10)) == _history(b.run(10))

    def test_snapshot_restore_roundtrip(self, space):
        opt = BayesianOptimizer(space, quadratic, warmup=3, seed=8)
        result = opt.run(6)
        state = opt.snapshot()
        first = opt.suggest(result)
        opt.restore(state)
        again = opt.suggest(result)
        assert space.key(first) == space.key(again)
