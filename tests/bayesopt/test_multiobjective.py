"""Tests for scalarization-based multi-objective BO."""

import pytest

from repro.bayesopt.multiobjective import MultiObjectiveBayesianOptimizer
from repro.bayesopt.results import Evaluation
from repro.bayesopt.space import DesignSpace, Integer
from repro.errors import DesignSpaceError


@pytest.fixture
def space():
    return DesignSpace([Integer("x", 0, 20)])


def two_objectives(config):
    """Accuracy rises with x; cost rises with x — a clean trade-off."""
    x = config["x"]
    return Evaluation(
        config=config,
        objective=0.0,  # overwritten by the scalarizer
        feasible=True,
        metrics={"accuracy": x / 20.0, "cost": float(x)},
    )


class TestMultiObjective:
    def test_needs_two_objectives(self, space):
        with pytest.raises(DesignSpaceError):
            MultiObjectiveBayesianOptimizer(
                space, two_objectives, objective_names=["accuracy"]
            )

    def test_runs_budget(self, space):
        mo = MultiObjectiveBayesianOptimizer(
            space, two_objectives, ["accuracy", "cost"], minimize=["cost"],
            warmup=3, seed=0,
        )
        result = mo.run(10)
        assert len(result) == 10

    def test_records_weights_and_vectors(self, space):
        mo = MultiObjectiveBayesianOptimizer(
            space, two_objectives, ["accuracy", "cost"], minimize=["cost"],
            warmup=3, seed=0,
        )
        result = mo.run(6)
        for e in result.history:
            weights = e.metrics["scalarization_weights"]
            assert len(weights) == 2
            assert sum(weights) == pytest.approx(1.0)
            assert "accuracy" in e.metrics and "cost" in e.metrics

    def test_front_contains_extremes(self, space):
        mo = MultiObjectiveBayesianOptimizer(
            space, two_objectives, ["accuracy", "cost"], minimize=["cost"],
            warmup=5, seed=1,
        )
        result = mo.run(21)  # space has 21 points; dedupe covers it
        front = mo.front(result)
        # With accuracy strictly increasing and cost strictly increasing in
        # x, *every* point is Pareto-optimal.
        assert len(front) == 21

    def test_front_excludes_dominated(self, space):
        def objectives(config):
            x = config["x"]
            # accuracy peaks at x=10 while cost still rises: x>10 dominated.
            return Evaluation(
                config=config,
                objective=0.0,
                feasible=True,
                metrics={"accuracy": 1.0 - abs(x - 10) / 10.0, "cost": float(x)},
            )

        mo = MultiObjectiveBayesianOptimizer(
            space, objectives, ["accuracy", "cost"], minimize=["cost"],
            warmup=5, seed=2,
        )
        result = mo.run(21)
        front_xs = {e.config["x"] for e in mo.front(result)}
        assert all(x <= 10 for x in front_xs)

    def test_missing_metric_raises(self, space):
        def bad(config):
            return Evaluation(config=config, objective=0.0, metrics={"accuracy": 1.0})

        mo = MultiObjectiveBayesianOptimizer(
            space, bad, ["accuracy", "cost"], warmup=2, seed=0
        )
        with pytest.raises(DesignSpaceError):
            mo.run(3)

    def test_infeasible_excluded_from_front(self, space):
        def objectives(config):
            x = config["x"]
            return Evaluation(
                config=config,
                objective=0.0,
                feasible=x <= 5,
                metrics={"accuracy": x / 20.0, "cost": float(x)},
            )

        mo = MultiObjectiveBayesianOptimizer(
            space, objectives, ["accuracy", "cost"], minimize=["cost"],
            warmup=4, seed=3,
        )
        result = mo.run(15)
        assert all(e.feasible for e in mo.front(result))
