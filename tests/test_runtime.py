"""Tests for the deployment runtime (stream processing)."""

import numpy as np
import pytest

from repro.backends.taurus import TaurusBackend
from repro.datasets.botnet import (
    flow_label,
    generate_botnet_flows,
    marker_dataset,
)
from repro.errors import HomunculusError
from repro.eval.baselines import train_baseline_dnn
from repro.datasets import load_botnet
from repro.netsim.packet import Packet
from repro.runtime import (
    FlowmarkerTracker,
    PacketFeatureExtractor,
    StreamProcessor,
    StreamStats,
)


def make_packet(ts=0.0, size=100, src=1, dst=2):
    return Packet(timestamp=ts, size=size, src_ip=src, dst_ip=dst,
                  src_port=1000, dst_port=2000)


class TestPacketFeatureExtractor:
    def test_shape(self):
        vec = PacketFeatureExtractor().extract(make_packet())
        assert vec.shape == (7,)


class TestFlowmarkerTracker:
    def test_first_packet_no_ipt(self):
        tracker = FlowmarkerTracker()
        marker = tracker.extract(make_packet(ts=1.0))
        assert marker[: tracker.spec.pl_bins].sum() == 1
        assert marker[tracker.spec.pl_bins :].sum() == 0

    def test_second_packet_adds_ipt(self):
        tracker = FlowmarkerTracker()
        tracker.extract(make_packet(ts=1.0))
        marker = tracker.extract(make_packet(ts=2.0))
        assert marker[: tracker.spec.pl_bins].sum() == 2
        assert marker[tracker.spec.pl_bins :].sum() == 1

    def test_conversations_isolated(self):
        tracker = FlowmarkerTracker()
        tracker.extract(make_packet(src=1, dst=2))
        marker = tracker.extract(make_packet(src=3, dst=4))
        assert marker.sum() == 1  # fresh conversation state

    def test_direction_insensitive(self):
        tracker = FlowmarkerTracker()
        tracker.extract(make_packet(ts=0.0, src=1, dst=2))
        marker = tracker.extract(make_packet(ts=1.0, src=2, dst=1))
        assert marker[: tracker.spec.pl_bins].sum() == 2

    def test_eviction_when_full(self):
        tracker = FlowmarkerTracker(max_conversations=2)
        tracker.extract(make_packet(ts=0.0, src=1, dst=2))
        tracker.extract(make_packet(ts=1.0, src=3, dst=4))
        tracker.extract(make_packet(ts=2.0, src=5, dst=6))
        assert len(tracker) == 2
        assert tracker.evictions == 1

    def test_tracker_matches_offline_marker(self):
        flows = generate_botnet_flows(10, seed=0)
        tracker = FlowmarkerTracker(max_conversations=64)
        final = {}
        for flow in flows:
            for packet in flow:
                key = tracker.key_fn(packet)
                final[key] = tracker.extract(packet)
        X, _ = marker_dataset(flows)
        # Every offline full-flow marker appears as some conversation's
        # final online state.
        online = np.stack(list(final.values()))
        for offline in X:
            assert any(np.array_equal(offline, row) for row in online)

    def test_non_monotonic_raises(self):
        tracker = FlowmarkerTracker()
        tracker.extract(make_packet(ts=5.0))
        with pytest.raises(HomunculusError):
            tracker.extract(make_packet(ts=1.0))

    def test_eviction_order_matches_min_scan(self):
        """O(1) LRU eviction must pick the same victims the old O(n)
        min-timestamp scan did (streams are time-ordered)."""

        class MinScanTracker(FlowmarkerTracker):
            def _evict_oldest(self):
                oldest = min(self._last_seen, key=self._last_seen.get)
                del self._markers[oldest]
                del self._last_seen[oldest]
                self.evictions += 1

        rng = np.random.default_rng(0)
        # 12 conversations churning through a 4-slot table, globally
        # monotonic timestamps, repeated touches reordering recency.
        packets = []
        ts = 0.0
        for _ in range(400):
            ts += float(rng.exponential(0.1))
            pair = int(rng.integers(12))
            packets.append(make_packet(ts=ts, src=pair + 1, dst=100 + pair))

        fast = FlowmarkerTracker(max_conversations=4)
        slow = MinScanTracker(max_conversations=4)
        for packet in packets:
            np.testing.assert_array_equal(
                fast.extract(packet), slow.extract(packet)
            )
        assert fast.evictions == slow.evictions
        assert list(fast._markers) == list(slow._markers)
        assert fast._last_seen == slow._last_seen

    def test_eviction_keeps_state_consistent(self):
        tracker = FlowmarkerTracker(max_conversations=2)
        for i in range(10):
            tracker.extract(make_packet(ts=float(i), src=i + 1, dst=50 + i))
        assert len(tracker) == 2
        assert tracker.evictions == 8
        assert set(tracker._markers) == set(tracker._last_seen)

    def test_reset(self):
        tracker = FlowmarkerTracker()
        tracker.extract(make_packet())
        tracker.reset()
        assert len(tracker) == 0


class TestStreamStats:
    def test_accuracy_tracking(self):
        stats = StreamStats()
        stats.record(1, label=1)
        stats.record(0, label=1)
        stats.record(1)  # unlabeled
        assert stats.packets == 3
        assert stats.labeled == 2
        assert stats.accuracy == 0.5
        assert stats.confusion[(1, 1)] == 1
        assert stats.confusion[(1, 0)] == 1

    def test_accuracy_none_when_unlabeled(self):
        stats = StreamStats()
        stats.record(0)
        assert stats.accuracy is None

    def test_positive_rate(self):
        stats = StreamStats()
        for p in (1, 1, 0, 1):
            stats.record(p)
        assert stats.positive_rate() == 0.75


class TestStreamProcessor:
    @pytest.fixture(scope="class")
    def bd_pipeline(self):
        dataset = load_botnet(n_train_flows=150, n_test_flows=2, seed=13,
                              per_packet_test=False)
        net, scaler = train_baseline_dnn("bd", dataset, seed=0)
        return TaurusBackend().compile_model(net, scaler=scaler, name="bd")

    def test_online_botnet_detection(self, bd_pipeline):
        flows = generate_botnet_flows(60, seed=99)
        processor = StreamProcessor(
            bd_pipeline, FlowmarkerTracker(max_conversations=512), batch_size=64
        )
        predictions = processor.process_flows(flows, label_fn=flow_label)
        assert len(predictions) == sum(len(f) for f in flows)
        assert processor.stats.accuracy is not None
        assert processor.stats.accuracy > 0.7  # online per-packet accuracy

    def test_prediction_order_preserved(self, bd_pipeline):
        flows = generate_botnet_flows(10, seed=5)
        tracker = FlowmarkerTracker(max_conversations=512)
        processor = StreamProcessor(bd_pipeline, tracker, batch_size=7)
        batched = processor.process_flows(flows)
        tracker.reset()
        single = StreamProcessor(bd_pipeline, FlowmarkerTracker(max_conversations=512),
                                 batch_size=1).process_flows(flows)
        assert list(batched) == list(single)

    def test_pipeline_must_have_predict(self):
        with pytest.raises(HomunculusError):
            StreamProcessor(object(), PacketFeatureExtractor())

    def test_bad_batch_size(self, bd_pipeline):
        with pytest.raises(HomunculusError):
            StreamProcessor(bd_pipeline, PacketFeatureExtractor(), batch_size=0)
