"""Tests for experiment formatters and the baseline trainer."""

import numpy as np
import pytest

from repro.eval.baselines import (
    BASELINE_TOPOLOGIES,
    BASELINE_TRAINING,
    train_baseline_dnn,
)
from repro.eval.experiments import (
    format_fig4,
    format_fig6,
    format_fig7,
    format_reaction_time,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
)


class TestBaselines:
    def test_topologies_match_paper(self):
        # The paper states these hidden stacks explicitly (§5).
        assert BASELINE_TOPOLOGIES["tc"] == (10, 10, 5)
        assert BASELINE_TOPOLOGIES["bd"] == (10, 10, 10, 10)

    def test_training_hyperparams_fixed(self):
        assert BASELINE_TRAINING["epochs"] == 30
        assert BASELINE_TRAINING["optimizer"] == "adam"

    def test_binary_head_for_ad(self, ad_dataset):
        net, scaler = train_baseline_dnn("ad", ad_dataset, seed=0)
        assert net.topology == [7, 12, 8, 1]
        assert scaler.mean_ is not None

    def test_multiclass_head_for_tc(self, tc_dataset):
        net, _ = train_baseline_dnn("tc", tc_dataset, seed=0)
        assert net.topology == [7, 10, 10, 5, 5]
        assert net.output_activation == "softmax"

    def test_deterministic(self, ad_dataset):
        a, _ = train_baseline_dnn("ad", ad_dataset, seed=3)
        b, _ = train_baseline_dnn("ad", ad_dataset, seed=3)
        for (wa, ba), (wb, bb) in zip(a.get_weights(), b.get_weights()):
            assert np.array_equal(wa, wb)
            assert np.array_equal(ba, bb)

    def test_unknown_app_raises(self, ad_dataset):
        with pytest.raises(KeyError):
            train_baseline_dnn("nope", ad_dataset)


class TestFormatters:
    def test_table2(self):
        rows = [
            {"app": "ad", "variant": "baseline", "features": 7, "n_params": 203,
             "f1": 71.10, "cus": 24, "mus": 48},
            {"app": "ad", "variant": "homunculus", "features": 7, "n_params": 254,
             "f1": 83.10, "cus": 41, "mus": 67},
        ]
        text = format_table2(rows)
        assert "Base-AD" in text and "Hom-AD" in text
        assert "83.10" in text

    def test_table3(self):
        rows = [{"strategy": "DNN > DNN", "cus": 24, "mus": 24,
                 "n_models": 2, "n_distinct": 1}]
        text = format_table3(rows)
        assert "DNN > DNN" in text and "24" in text

    def test_table4(self):
        rows = [{"application": "AD: Fused", "pcus": 48, "pmus": 83, "f1": 80.0}]
        text = format_table4(rows)
        assert "AD: Fused" in text and "48" in text

    def test_table5(self):
        rows = [{"application": "Loopback", "model": "-", "lut_pct": 5.36,
                 "ff_pct": 3.64, "bram_pct": 4.15, "power_w": 15.131}]
        text = format_table5(rows)
        assert "Loopback" in text and "15.131" in text

    def test_fig4(self):
        result = {
            "iterations": [1, 2],
            "f1_scores": [50.0, 80.0],
            "feasible": [True, False],
            "incumbent": [50.0, 50.0],
        }
        text = format_fig4(result)
        assert "Iter" in text and "False" in text

    def test_fig4_handles_no_incumbent(self):
        result = {
            "iterations": [1],
            "f1_scores": [10.0],
            "feasible": [False],
            "incumbent": [None],
        }
        assert "-" in format_fig4(result)

    def test_fig6(self):
        result = {
            "benign_pl": [1.0], "malicious_pl": [2.0],
            "benign_ipt": [3.0], "malicious_ipt": [4.0],
        }
        text = format_fig6(result)
        assert "packet-length" in text and "inter-arrival" in text

    def test_fig7(self):
        result = {"series": {"KMeans2": {"mats": 2, "v_scores": [50.0],
                                         "best_v": 50.0, "n_clusters": 2,
                                         "used_mats": 2}}}
        text = format_fig7(result)
        assert "KMeans2" in text and "50.0" in text

    def test_reaction_time(self):
        result = {
            "curve": [{"packets_seen": 1, "f1": 70.0, "n_samples": 100}],
            "per_packet_latency_ns": 42.0,
            "flow_completion_latency_s": 3600.0,
        }
        text = format_reaction_time(result)
        assert "42 ns" in text and "3600 s" in text
