"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.rng import as_generator, derive, spawn


class TestAsGenerator:
    def test_accepts_int_seed(self):
        gen = as_generator(7)
        assert isinstance(gen, np.random.Generator)

    def test_same_seed_same_stream(self):
        a = as_generator(7).integers(0, 1000, 10)
        b = as_generator(7).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_passes_generator_through(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(as_generator(0), 5)
        assert len(children) == 5

    def test_spawn_streams_differ(self):
        children = spawn(as_generator(0), 2)
        a = children[0].integers(0, 10**9)
        b = children[1].integers(0, 10**9)
        assert a != b

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)

    def test_spawn_deterministic(self):
        a = spawn(as_generator(3), 3)[1].integers(0, 10**9)
        b = spawn(as_generator(3), 3)[1].integers(0, 10**9)
        assert a == b


class TestDerive:
    def test_derive_deterministic_from_int(self):
        a = derive(5, 10).integers(0, 10**9)
        b = derive(5, 10).integers(0, 10**9)
        assert a == b

    def test_derive_salt_changes_stream(self):
        a = derive(5, 10).integers(0, 10**9)
        b = derive(5, 11).integers(0, 10**9)
        assert a != b

    def test_derive_from_none(self):
        assert isinstance(derive(None, 1), np.random.Generator)

    def test_derive_from_generator(self):
        gen = np.random.default_rng(0)
        assert isinstance(derive(gen, 1), np.random.Generator)
