"""Property-based checks on the drift detectors.

The detectors guard a retrain trigger, so both failure modes are
expensive: a false positive burns a distributed search and risks a
gated-rollback cycle on the fleet; a false negative leaves a stale
pipeline serving drifted traffic.  These tests pin the operating
envelope: stationarity never fires across many seeds, real shifts of
varying magnitude fire within a bounded number of windows, and
hysteresis keeps an oscillating distribution from thrashing the loop.
"""

import numpy as np
import pytest

from repro.drift import (
    ClassRateDetector,
    DriftMonitor,
    FeatureDriftDetector,
    Hysteresis,
    class_rates,
    ks_statistic,
    psi,
    total_variation,
)
from repro.errors import AdaptationError

WINDOW = 192
N_FEATURES = 4


def _stationary(rng, n=WINDOW):
    rows = rng.normal(0.0, 1.0, size=(n, N_FEATURES))
    preds = rng.integers(0, 2, size=n)
    return rows, preds


class TestPrimitives:
    def test_psi_zero_for_identical_samples(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=512)
        assert psi(x, x) == pytest.approx(0.0, abs=1e-6)

    def test_psi_grows_with_shift_magnitude(self):
        rng = np.random.default_rng(1)
        ref = rng.normal(0.0, 1.0, size=512)
        scores = [
            psi(ref, rng.normal(mu, 1.0, size=512))
            for mu in (0.0, 0.5, 1.0, 2.0, 4.0)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(scores, scores[1:]))
        assert scores[-1] > 1.0

    def test_psi_constant_column_fallback(self):
        ref = np.full(128, 7.0)
        assert psi(ref, np.full(128, 7.0)) == pytest.approx(0.0, abs=1e-2)
        assert psi(ref, np.full(128, 9.0)) > 1.0

    def test_ks_bounds_and_symmetry(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=256)
        b = rng.normal(3.0, 1.0, size=256)
        d = ks_statistic(a, b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(ks_statistic(b, a))
        assert ks_statistic(a, a) == pytest.approx(0.0)
        # Disjoint supports: the ECDFs separate completely.
        assert ks_statistic(a, a + 100.0) == pytest.approx(1.0)

    def test_total_variation_properties(self):
        p = np.array([0.5, 0.5])
        assert total_variation(p, p) == 0.0
        assert total_variation(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)
        with pytest.raises(AdaptationError):
            total_variation(p, np.array([1.0]))

    def test_class_rates_empty_rejected(self):
        with pytest.raises(AdaptationError):
            class_rates(np.array([]), classes=np.array([0, 1]))


class TestNoFalsePositives:
    @pytest.mark.parametrize("seed", range(24))
    def test_stationary_traffic_never_confirms(self, seed):
        rng = np.random.default_rng(seed)
        monitor = DriftMonitor(window=WINDOW, min_window=64)
        rows, preds = _stationary(rng)
        monitor.calibrate(rows, preds, t=0.0)
        for step in range(12):
            rows, preds = _stationary(rng)
            verdict = monitor.check(rows, preds, t=float(step + 1))
            assert not verdict["confirmed"], (
                f"seed {seed} false-positive at window {step}: "
                f"{verdict['reasons']}"
            )
        assert monitor.events == []

    @pytest.mark.parametrize("seed", range(8))
    def test_stationary_detectors_score_below_threshold(self, seed):
        rng = np.random.default_rng(100 + seed)
        ref_rows, ref_preds = _stationary(rng)
        rows, preds = _stationary(rng)
        features = FeatureDriftDetector().score(ref_rows, rows)
        classes = ClassRateDetector().score(ref_preds, preds)
        assert not features["drifted"]
        assert not classes["drifted"]


class TestShiftsDetected:
    @pytest.mark.parametrize("magnitude", [1.0, 2.0, 4.0])
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_mean_shift_confirmed_within_bounded_windows(
        self, magnitude, seed
    ):
        rng = np.random.default_rng(seed)
        monitor = DriftMonitor(window=WINDOW, min_window=64,
                               trigger_after=2)
        rows, preds = _stationary(rng)
        monitor.calibrate(rows, preds, t=0.0)
        confirmed_at = None
        for step in range(8):
            rows = rng.normal(magnitude, 1.0, size=(WINDOW, N_FEATURES))
            preds = rng.integers(0, 2, size=WINDOW)
            if monitor.check(rows, preds, t=float(step + 1))["confirmed"]:
                confirmed_at = step
                break
        # Hysteresis needs trigger_after consecutive windows; a genuine
        # shift must confirm as soon as that debounce allows.
        assert confirmed_at is not None
        assert confirmed_at <= 2

    def test_prediction_rate_shift_alone_confirms(self):
        rng = np.random.default_rng(3)
        # Rows stay stationary, so only the prediction-rate detector
        # can trip — the event must name the class-rate signal.
        monitor = DriftMonitor(window=WINDOW, min_window=64,
                               trigger_after=2)
        rows, _ = _stationary(rng)
        monitor.calibrate(rows, rng.integers(0, 2, size=WINDOW), t=0.0)
        confirmed = False
        for step in range(4):
            rows, _ = _stationary(rng)
            verdict = monitor.check(rows, np.zeros(WINDOW, dtype=int),
                                    t=float(step + 1))
            confirmed = confirmed or verdict["confirmed"]
        assert confirmed
        assert monitor.events[-1]["signal"] == "class-rate"


class TestHysteresis:
    def test_flipping_distribution_never_confirms(self):
        """A distribution that alternates every window raises raw
        verdicts but must never produce a confirmed event with
        trigger_after=2 — the oscillation can't sustain a streak."""
        rng = np.random.default_rng(4)
        monitor = DriftMonitor(window=WINDOW, min_window=64,
                               trigger_after=2, cooldown=2)
        ref_rows, ref_preds = _stationary(rng)
        monitor.calibrate(ref_rows, ref_preds, t=0.0)
        raws = []
        for step in range(16):
            if step % 2 == 0:
                rows = rng.normal(4.0, 1.0, size=(WINDOW, N_FEATURES))
            else:
                rows = rng.normal(0.0, 1.0, size=(WINDOW, N_FEATURES))
            preds = rng.integers(0, 2, size=WINDOW)
            verdict = monitor.check(rows, preds, t=float(step + 1))
            raws.append(verdict["raw"])
            assert not verdict["confirmed"]
        assert any(raws), "shifted windows should at least raise raw flags"
        assert monitor.events == []

    def test_trigger_after_one_fires_on_flip(self):
        """Contrast: without the debounce the same oscillation thrashes."""
        rng = np.random.default_rng(4)
        monitor = DriftMonitor(window=WINDOW, min_window=64,
                               trigger_after=1, cooldown=0)
        ref_rows, ref_preds = _stationary(rng)
        monitor.calibrate(ref_rows, ref_preds, t=0.0)
        for step in range(6):
            if step % 2 == 0:
                rows = rng.normal(4.0, 1.0, size=(WINDOW, N_FEATURES))
            else:
                rows = rng.normal(0.0, 1.0, size=(WINDOW, N_FEATURES))
            monitor.check(rows, rng.integers(0, 2, size=WINDOW),
                          t=float(step + 1))
        assert len(monitor.events) >= 2

    def test_cooldown_is_refractory(self):
        h = Hysteresis(trigger_after=1, cooldown=3)
        assert h.update(True)
        # The next `cooldown` raw verdicts are swallowed.
        assert [h.update(True) for _ in range(3)] == [False] * 3
        assert h.update(True)

    def test_streak_resets_on_clean_window(self):
        h = Hysteresis(trigger_after=3, cooldown=0)
        assert not h.update(True)
        assert not h.update(True)
        assert not h.update(False)
        assert not h.update(True)
        assert not h.update(True)
        assert h.update(True)

    def test_validation(self):
        with pytest.raises(AdaptationError):
            Hysteresis(trigger_after=0)
        with pytest.raises(AdaptationError):
            Hysteresis(trigger_after=1, cooldown=-1)


class TestMonitorLifecycle:
    def test_check_before_calibration_rejected(self):
        monitor = DriftMonitor(window=WINDOW, min_window=64)
        with pytest.raises(AdaptationError):
            monitor.check(np.zeros((WINDOW, 2)), np.zeros(WINDOW))

    def test_small_window_not_judged(self):
        rng = np.random.default_rng(5)
        monitor = DriftMonitor(window=WINDOW, min_window=64)
        rows, preds = _stationary(rng)
        monitor.calibrate(rows, preds, t=0.0)
        verdict = monitor.check(rows[:8], preds[:8], t=1.0)
        assert not verdict["judged"]
        assert not verdict["confirmed"]

    def test_recalibration_resets_reference_and_hysteresis(self):
        rng = np.random.default_rng(6)
        monitor = DriftMonitor(window=WINDOW, min_window=64,
                               trigger_after=1, cooldown=0)
        rows, preds = _stationary(rng)
        monitor.calibrate(rows, preds, t=0.0)
        shifted = rng.normal(5.0, 1.0, size=(WINDOW, N_FEATURES))
        assert monitor.check(shifted, preds, t=1.0)["confirmed"]
        # After recalibrating *on the shifted traffic*, the same
        # distribution is the new normal.
        monitor.calibrate(shifted, preds, t=2.0)
        more = rng.normal(5.0, 1.0, size=(WINDOW, N_FEATURES))
        assert not monitor.check(more, preds, t=3.0)["confirmed"]

    def test_state_is_json_friendly(self):
        import json

        rng = np.random.default_rng(7)
        monitor = DriftMonitor(window=WINDOW, min_window=64)
        rows, preds = _stationary(rng)
        monitor.calibrate(rows, preds, t=0.0)
        monitor.check(rows, preds, t=1.0)
        json.dumps(monitor.state())
