"""The closed loop: drift -> retrain -> gated redeploy, plus chaos.

The end-to-end test runs the whole machine on the shift scenario; the
chaos tests pin the fault-tolerance contract the loop inherits from
``run_sharded`` (a killed retrain worker costs a retry, not the result
— bit-identically) and the safety property that a failed retrain never
registers, let alone serves, a partial pipeline.
"""

import asyncio

import numpy as np
import pytest

from repro.control import ControlClient, ControlServer, FleetController, FleetWorker
from repro.distrib.driver import run_sharded
from repro.distrib.launchers import InProcessLauncher, WorkQueueLauncher
from repro.distrib.worker import CHAOS_KILL_ENV
from repro.drift import AdaptationLoop, DriftMonitor, TrafficCapture, rebuild_winner
from repro.drift.scenario import (
    PHASE_PRE,
    PHASE_SHIFTED,
    adaptation_spec_factory,
    phase_trace,
    shifting_traffic,
    train_initial_pipeline,
)
from repro.errors import AdaptationError
from repro.netsim.features import PACKET_FEATURE_NAMES, packet_features
from repro.runtime import PacketFeatureExtractor
from repro.serving import AsyncStreamEngine

SEED = 13


def _shifted_capture(n_flows=40, capacity=4096, seed=SEED):
    """A capture ring pre-filled with shifted-phase traffic (as if the
    engine had been serving it)."""
    packets, labels = phase_trace(n_flows, PHASE_SHIFTED, seed=seed)
    capture = TrafficCapture(capacity=capacity,
                             feature_names=PACKET_FEATURE_NAMES)
    rows = [packet_features(p) for p in packets]
    times = [p.timestamp for p in packets]
    capture.observe_batch(rows, labels, [0] * len(rows), times=times)
    return capture


def _retrain_directly(launcher, shard_dir, max_retries=1):
    """The loop's retrain stage, run synchronously: capture -> dataset
    -> snapshot -> run_sharded -> rebuild."""
    capture = _shifted_capture()
    ref = capture.snapshot(f"{shard_dir}/cap.npz")
    spec = adaptation_spec_factory(budget=2, seed=SEED, train_epochs=6)(ref)
    out = run_sharded(spec, shards=2, launcher=launcher,
                      shard_dir=f"{shard_dir}/shards",
                      max_retries=max_retries)
    pipeline, best = rebuild_winner(spec, out)
    return pipeline, best, out, ref


class TestClosedLoop:
    def test_end_to_end_drift_retrain_redeploy(self):
        """Traffic shifts mid-run; the loop must confirm drift, retrain
        on captured traffic, deploy through the gate, and the fleet must
        end up serving the retrained version with zero drops and the
        conservation invariant intact.  Version transitions are sampled
        continuously: the worker may only ever serve v0 or the fully
        merged adapt-1."""
        v0, _ = train_initial_pipeline(seed=SEED, n_train_flows=60,
                                       n_test_flows=20)
        pre = phase_trace(50, PHASE_PRE, seed=SEED + 101)
        post = phase_trace(50, PHASE_SHIFTED, seed=SEED + 202)

        async def run():
            stop = asyncio.Event()
            capture = TrafficCapture(capacity=4096,
                                     feature_names=PACKET_FEATURE_NAMES)
            engine = AsyncStreamEngine(
                v0, PacketFeatureExtractor(), batch_size=64,
                queue_depth=512, drop_policy="block", capture=capture,
            )
            worker = FleetWorker("w0", engine, version="v0")
            controller = FleetController([worker])
            monitor = DriftMonitor(window=192, min_window=64,
                                   feature_names=PACKET_FEATURE_NAMES)
            loop = AdaptationLoop(
                controller, monitor,
                adaptation_spec_factory(budget=2, seed=SEED,
                                        train_epochs=8),
                shards=2, max_retries=1, check_interval_s=0.2,
            )
            worker.attach(asyncio.create_task(engine.run(
                shifting_traffic(stop, pre, post, rate=4000.0,
                                 shift_after_s=1.0))))
            loop_task = asyncio.create_task(loop.run(stop))
            server = ControlServer(controller, port=0, adaptation=loop)
            port = await server.start()

            versions_seen = []
            clock = asyncio.get_running_loop()
            deadline = clock.time() + 90.0
            while clock.time() < deadline:
                if worker.version != (versions_seen[-1] if versions_seen
                                      else None):
                    versions_seen.append(worker.version)
                if loop.deployed >= 1:
                    break
                await asyncio.sleep(0.05)
            # Let the retrained pipeline serve a moment, then stop.
            await asyncio.sleep(0.8)
            versions_seen.append(worker.version)
            remote = await ControlClient(port=port).adaptation()
            stop.set()
            await asyncio.gather(worker.task, return_exceptions=True)
            await loop_task
            await server.stop()
            return worker, loop, versions_seen, remote

        worker, loop, versions_seen, remote = asyncio.run(run())

        assert loop.deployed == 1
        assert loop.events[-1]["outcome"] == "deployed"
        # Single monotonic transition: v0 -> adapt-1, nothing else ever
        # served (a partially-merged pipeline would show as another
        # version or an exception).
        deduped = [v for i, v in enumerate(versions_seen)
                   if i == 0 or v != versions_seen[i - 1]]
        assert deduped == ["v0", "adapt-1"]

        summary = worker.engine.stats.summary()
        assert summary["dropped"] == 0
        assert summary["enqueued"] == summary["packets"] + summary["dropped"]
        # The retrained pipeline classifies the shifted traffic it is
        # now serving (post-swap rows only).
        accuracy = worker.engine.capture.accuracy(last=128)
        assert accuracy is not None and accuracy >= 0.9

        # The control surface serves the loop's state.
        assert remote["state"] in ("cooldown", "monitoring")
        assert remote["deployed"] == 1
        assert remote["events"][-1]["version"] == "adapt-1"


class TestChaosRetrain:
    def test_killed_worker_converges_bit_identically(self, tmp_path,
                                                     monkeypatch):
        """A worker crash mid-retrain is retried (``max_retries``) and
        the merged result — config, objective, and the rebuilt
        pipeline's predictions — is bit-identical to a crash-free run."""
        clean_pipe, clean_best, clean_out, ref = _retrain_directly(
            InProcessLauncher(), str(tmp_path / "clean"))

        marker = tmp_path / "killed"
        monkeypatch.setenv(CHAOS_KILL_ENV, f"unit-0000@{marker}")
        chaos_pipe, chaos_best, chaos_out, _ = _retrain_directly(
            WorkQueueLauncher(drainers=2, mode="thread", timeout=300,
                              stale_after=None),
            str(tmp_path / "chaos"), max_retries=2)
        monkeypatch.delenv(CHAOS_KILL_ENV)

        assert marker.exists(), "chaos kill never fired"
        ft = chaos_out.stats["fault_tolerance"]
        assert ft["task_launches"] > ft["tasks"] or ft["retries"] >= 0

        assert chaos_best.algorithm == clean_best.algorithm
        assert chaos_best.best_config == clean_best.best_config
        assert chaos_best.objective == clean_best.objective

        test_x = ref.materialize().test_x
        assert np.array_equal(clean_pipe.predict(test_x),
                              chaos_pipe.predict(test_x))

    def test_failed_retrain_registers_nothing(self, tmp_path, monkeypatch):
        """When the retrain dies with retries exhausted, the loop records
        a failed event and the fleet keeps serving what it was serving —
        no version is registered, nothing is swapped."""
        v0, _ = train_initial_pipeline(seed=SEED, n_train_flows=40,
                                       n_test_flows=10)
        engine = AsyncStreamEngine(v0, PacketFeatureExtractor(),
                                   capture=_shifted_capture())
        worker = FleetWorker("w0", engine, version="v0")
        controller = FleetController([worker])
        monitor = DriftMonitor(window=192, min_window=64)
        loop = AdaptationLoop(
            controller, monitor,
            adaptation_spec_factory(budget=2, seed=SEED, train_epochs=6),
            shards=1, max_retries=0,
            launcher=WorkQueueLauncher(drainers=1, mode="thread",
                                       timeout=120, stale_after=None),
            capture_dir=str(tmp_path),
        )
        # No marker path: the directive matches every attempt, so the
        # task fails permanently and retries exhaust.
        monkeypatch.setenv(CHAOS_KILL_ENV, "unit-0000")
        outcome = asyncio.run(loop.adapt())
        monkeypatch.delenv(CHAOS_KILL_ENV)

        assert loop.failed == 1 and loop.deployed == 0
        assert loop.events[-1]["outcome"] == "failed"
        assert outcome["state"] == "monitoring"
        assert "adapt-1" not in controller.pipelines
        assert worker.version == "v0"
        assert engine.pipeline is v0


class TestLoopValidation:
    def test_loop_requires_a_capture(self):
        v0, _ = train_initial_pipeline(seed=SEED, n_train_flows=40,
                                       n_test_flows=10)
        engine = AsyncStreamEngine(v0, PacketFeatureExtractor())
        controller = FleetController([FleetWorker("w0", engine)])
        with pytest.raises(AdaptationError):
            AdaptationLoop(controller, DriftMonitor(),
                           adaptation_spec_factory())

    def test_knobs_validated(self):
        v0, _ = train_initial_pipeline(seed=SEED, n_train_flows=40,
                                       n_test_flows=10)
        engine = AsyncStreamEngine(v0, PacketFeatureExtractor(),
                                   capture=TrafficCapture())
        controller = FleetController([FleetWorker("w0", engine)])
        monitor = DriftMonitor()
        factory = adaptation_spec_factory()
        with pytest.raises(AdaptationError):
            AdaptationLoop(controller, monitor, factory, shards=0)
        with pytest.raises(AdaptationError):
            AdaptationLoop(controller, monitor, factory, max_retries=-1)
        with pytest.raises(AdaptationError):
            AdaptationLoop(controller, monitor, factory,
                           check_interval_s=0.0)
        with pytest.raises(AdaptationError):
            AdaptationLoop(controller, monitor, "not-callable")
