"""Traffic capture: bounded memory, window alignment, dataset export."""

import numpy as np
import pytest

from repro.drift import TrafficCapture, captured_dataset
from repro.errors import AdaptationError


def _fill(capture, n, label_of=lambda i: i % 2, t0=0.0, width=3):
    rows = [np.full(width, float(i)) for i in range(n)]
    labels = [label_of(i) for i in range(n)]
    preds = [1 - (i % 2) for i in range(n)]
    times = [t0 + float(i) for i in range(n)]
    capture.observe_batch(rows, labels, preds, times=times)


class TestRing:
    def test_capacity_bounds_memory(self):
        c = TrafficCapture(capacity=8)
        _fill(c, 100)
        assert len(c) == 8
        w = c.window()
        assert w["rows"].shape == (8, 3)
        # Newest rows survive, in chronological order.
        assert list(w["times"]) == [float(t) for t in range(92, 100)]
        assert c.seen == 100 and c.labeled == 100

    def test_unlabeled_rows_counted_not_retained(self):
        c = TrafficCapture(capacity=16)
        _fill(c, 6, label_of=lambda i: None if i % 3 else 1)
        assert c.skipped_unlabeled == 4
        assert len(c) == 2

    def test_all_unlabeled_batch_is_noop(self):
        c = TrafficCapture(capacity=16)
        c.observe_batch([np.zeros(3)], [None], [0], times=[0.0])
        assert len(c) == 0
        assert c.skipped_unlabeled == 1
        assert c.accuracy() is None

    def test_width_change_rejected(self):
        c = TrafficCapture(capacity=16)
        _fill(c, 4, width=3)
        with pytest.raises(AdaptationError):
            _fill(c, 4, width=5)

    def test_scalar_timestamp_broadcasts(self):
        c = TrafficCapture(capacity=16)
        c.observe_batch([np.zeros(2), np.ones(2)], [0, 1], [0, 1],
                        times=7.5)
        assert list(c.window()["times"]) == [7.5, 7.5]

    def test_window_since_and_last(self):
        c = TrafficCapture(capacity=32)
        _fill(c, 10)
        assert c.window(since=6.0)["labels"].size == 3
        assert c.window(last=4)["labels"].size == 4
        assert c.window(last=4, since=8.0)["labels"].size == 1

    def test_columns_stay_in_lockstep(self):
        c = TrafficCapture(capacity=8)
        _fill(c, 20)
        w = c.window()
        # Row i was np.full(width, i) with label i % 2: features,
        # labels, and timestamps must reference the same packet.
        for t, row, label in zip(w["times"], w["rows"], w["labels"]):
            assert np.all(row == t)
            assert label == int(t) % 2

    def test_accuracy_reflects_predictions(self):
        c = TrafficCapture(capacity=32)
        # label = i % 2, prediction = 1 - i % 2: everything wrong.
        _fill(c, 10)
        assert c.accuracy() == 0.0
        c2 = TrafficCapture(capacity=32)
        c2.observe_batch([np.zeros(2)] * 4, [1, 1, 0, 0], [1, 0, 0, 0],
                         times=list(map(float, range(4))))
        assert c2.accuracy() == pytest.approx(0.75)

    def test_capacity_validated(self):
        with pytest.raises(AdaptationError):
            TrafficCapture(capacity=1)


class TestDatasetExport:
    def test_stride_split_and_determinism(self):
        c = TrafficCapture(capacity=64, feature_names=("a", "b", "c"))
        _fill(c, 40)
        ds = c.to_dataset(test_stride=4, min_rows=16)
        assert ds.n_train == 30 and ds.n_test == 10
        assert ds.feature_names == ("a", "b", "c")
        assert ds.metadata["source"] == "traffic-capture"
        # Same ring contents -> bit-identical dataset.
        again = c.to_dataset(test_stride=4, min_rows=16)
        assert np.array_equal(ds.train_x, again.train_x)
        assert np.array_equal(ds.test_y, again.test_y)

    def test_multiple_captures_merge_chronologically(self):
        a = TrafficCapture(capacity=32)
        b = TrafficCapture(capacity=32)
        _fill(a, 16, t0=0.0)
        _fill(b, 16, t0=0.5)   # interleaved timestamps
        ds = captured_dataset([a, b], min_rows=16)
        assert ds.n_train + ds.n_test == 32

    def test_too_few_rows_rejected(self):
        c = TrafficCapture(capacity=32)
        _fill(c, 8)
        with pytest.raises(AdaptationError):
            c.to_dataset(min_rows=16)

    def test_single_class_training_split_rejected(self):
        c = TrafficCapture(capacity=64)
        _fill(c, 40, label_of=lambda i: 1)
        with pytest.raises(AdaptationError):
            c.to_dataset(min_rows=16)

    def test_empty_capture_rejected(self):
        with pytest.raises(AdaptationError):
            captured_dataset([TrafficCapture(capacity=8)])
        with pytest.raises(AdaptationError):
            captured_dataset([])

    def test_snapshot_round_trips_through_dataset_ref(self, tmp_path):
        c = TrafficCapture(capacity=64, feature_names=("x", "y", "z"))
        _fill(c, 40)
        ref = c.snapshot(str(tmp_path / "cap.npz"), min_rows=16)
        loaded = ref.materialize()
        direct = c.to_dataset(min_rows=16)
        assert np.array_equal(loaded.train_x, direct.train_x)
        assert np.array_equal(loaded.test_x, direct.test_x)
        assert loaded.feature_names == ("x", "y", "z")
