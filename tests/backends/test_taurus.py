"""Tests for the Taurus backend: resources, IR, simulator, codegen."""

import numpy as np
import pytest

from repro.backends.base import ResourceUsage
from repro.backends.taurus import TaurusBackend, TaurusGrid, estimate_dnn_resources
from repro.backends.taurus.ir import (
    DecisionStage,
    DenseStage,
    MapReduceProgram,
    ScaleStage,
    lower_network,
    lower_svm,
)
from repro.backends.taurus.resources import (
    dense_layer_cost,
    initiation_interval,
    scale_stage_cost,
)
from repro.backends.taurus.simulator import TaurusSimulator
from repro.backends.taurus.spatial_codegen import generate_spatial
from repro.errors import BackendError
from repro.ml.network import NeuralNetwork
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVM


class TestGrid:
    def test_capacity(self):
        grid = TaurusGrid(16, 16)
        assert grid.available_cus == 256
        assert grid.available_mus == 256

    def test_limits_dict(self):
        assert TaurusGrid(4, 4).limits() == {"cus": 16, "mus": 16}

    def test_invalid_grid(self):
        with pytest.raises(BackendError):
            TaurusGrid(0, 4)


class TestCostModel:
    def test_dense_cost_scales_with_macs(self):
        small = dense_layer_cost(7, 4, nonlinear=True)
        large = dense_layer_cost(7, 32, nonlinear=True)
        assert large.cus > small.cus
        assert large.mus > small.mus

    def test_wide_layer_cu_heavy(self):
        wide = dense_layer_cost(30, 10, nonlinear=True)
        narrow = dense_layer_cost(6, 6, nonlinear=True)
        assert wide.cus > 3 * narrow.cus

    def test_deep_stack_mu_heavy(self):
        # Same MAC count: one wide layer vs many narrow ones.
        wide_usage, _ = estimate_dnn_resources([8, 32, 1], include_scaler=False)
        deep_usage, _ = estimate_dnn_resources(
            [8, 6, 6, 6, 6, 6, 1], include_scaler=False
        )
        wide_ratio = wide_usage["mus"] / wide_usage["cus"]
        deep_ratio = deep_usage["mus"] / deep_usage["cus"]
        assert deep_ratio > wide_ratio  # boundary buffers dominate in depth

    def test_estimate_includes_all_layers(self):
        usage, cycles = estimate_dnn_resources([7, 12, 8, 1])
        assert usage["cus"] > 0 and usage["mus"] > 0
        assert cycles > 6

    def test_bad_topology_raises(self):
        with pytest.raises(BackendError):
            estimate_dnn_resources([7])

    def test_initiation_interval(self):
        grid = TaurusGrid(2, 2)  # 4 CUs / 4 MUs
        fits = ResourceUsage({"cus": 4, "mus": 4})
        over = ResourceUsage({"cus": 9, "mus": 2})
        assert initiation_interval(fits, grid) == 1
        assert initiation_interval(over, grid) == 3

    def test_scale_stage_cost_positive(self):
        cost = scale_stage_cost(7)
        assert cost.cus >= 1 and cost.mus >= 1


class TestIR:
    def test_lower_network_structure(self, trained_ad_net):
        net, scaler = trained_ad_net
        program = lower_network(net, scaler=scaler, name="ad")
        assert isinstance(program.stages[0], ScaleStage)
        assert isinstance(program.stages[-1], DecisionStage)
        assert program.topology == net.topology

    def test_lower_without_scaler(self, trained_ad_net):
        net, _ = trained_ad_net
        program = lower_network(net, name="ad")
        assert isinstance(program.stages[0], DenseStage)

    def test_binary_head_is_threshold(self, trained_ad_net):
        net, scaler = trained_ad_net
        program = lower_network(net, scaler=scaler)
        assert program.stages[-1].kind == "threshold"

    def test_multiclass_head_is_argmax(self):
        net = NeuralNetwork([4, 6, 3], output_activation="softmax", seed=0)
        program = lower_network(net)
        assert program.stages[-1].kind == "argmax"

    def test_dim_mismatch_detected(self):
        stage_a = DenseStage(
            weight_codes=np.zeros((4, 3), dtype=np.int64),
            bias_codes=np.zeros(3, dtype=np.int64),
        )
        stage_b = DenseStage(
            weight_codes=np.zeros((5, 2), dtype=np.int64),
            bias_codes=np.zeros(2, dtype=np.int64),
        )
        with pytest.raises(BackendError):
            MapReduceProgram(
                name="bad",
                stages=[stage_a, stage_b, DecisionStage(kind="argmax", n_outputs=2)],
            )

    def test_program_must_end_with_decision(self):
        stage = DenseStage(
            weight_codes=np.zeros((2, 1), dtype=np.int64),
            bias_codes=np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(BackendError):
            MapReduceProgram(name="bad", stages=[stage])

    def test_unsupported_activation_rejected(self):
        net = NeuralNetwork([3, 4, 1], hidden_activation="tanh", seed=0)
        with pytest.raises(BackendError):
            lower_network(net)

    def test_lower_svm(self, blobs_binary):
        Xtr, ytr, _, _ = blobs_binary
        svm = LinearSVM(seed=0, epochs=10).fit(Xtr, ytr)
        program = lower_svm(svm)
        assert len(program.dense_stages) == 1
        assert program.stages[-1].kind == "threshold"

    def test_unfit_svm_raises(self):
        with pytest.raises(BackendError):
            lower_svm(LinearSVM())


class TestSimulator:
    def test_matches_float_model(self, trained_ad_net, ad_dataset):
        net, scaler = trained_ad_net
        program = lower_network(net, scaler=scaler)
        sim = TaurusSimulator(program)
        hw = sim.predict(ad_dataset.test_x)
        float_pred = net.predict(scaler.transform(ad_dataset.test_x))
        assert float(np.mean(hw == float_pred)) > 0.97

    def test_multiclass_agreement(self, tc_dataset):
        from repro.ml.preprocessing import OneHotEncoder

        scaler = StandardScaler().fit(tc_dataset.train_x)
        net = NeuralNetwork([7, 10, 5], output_activation="softmax", seed=0)
        net.fit(
            scaler.transform(tc_dataset.train_x),
            OneHotEncoder(5).fit_transform(tc_dataset.train_y),
            epochs=25,
            learning_rate=0.01,
        )
        program = lower_network(net, scaler=scaler)
        hw = TaurusSimulator(program).predict(tc_dataset.test_x)
        float_pred = net.predict(scaler.transform(tc_dataset.test_x))
        assert float(np.mean(hw == float_pred)) > 0.9

    def test_resources_match_estimate(self, trained_ad_net):
        net, scaler = trained_ad_net
        program = lower_network(net, scaler=scaler)
        sim = TaurusSimulator(program)
        estimate, cycles = estimate_dnn_resources(net.topology)
        assert sim.resources()["cus"] == estimate["cus"]
        assert sim.resources()["mus"] == estimate["mus"]
        assert sim.pipeline_cycles() == cycles

    def test_performance_ii1_when_fits(self, trained_ad_net):
        net, scaler = trained_ad_net
        sim = TaurusSimulator(lower_network(net, scaler=scaler), TaurusGrid(16, 16))
        perf = sim.performance()
        assert perf.throughput_gpps == pytest.approx(1.0)
        assert perf.latency_ns < 500

    def test_throughput_degrades_when_oversubscribed(self, trained_ad_net):
        net, scaler = trained_ad_net
        sim = TaurusSimulator(lower_network(net, scaler=scaler), TaurusGrid(2, 2))
        assert sim.performance().throughput_gpps < 1.0

    def test_single_row_input(self, trained_ad_net, ad_dataset):
        net, scaler = trained_ad_net
        sim = TaurusSimulator(lower_network(net, scaler=scaler))
        out = sim.predict(ad_dataset.test_x[0])
        assert out.shape == (1,)


class TestSpatialCodegen:
    def test_contains_structure(self, trained_ad_net):
        net, scaler = trained_ad_net
        program = lower_network(net, scaler=scaler, name="anomaly_detection")
        source = generate_spatial(program)
        assert "@spatial object AnomalyDetection" in source
        assert "Reduce(Reg[" in source
        assert "Foreach(" in source
        assert source.count("LUT[") >= 2 * len(net.dense_layers)

    def test_topology_in_header(self, trained_ad_net):
        net, scaler = trained_ad_net
        source = generate_spatial(lower_network(net, scaler=scaler, name="x"))
        assert "->".join(str(d) for d in net.topology) in source

    def test_threshold_decision_rendered(self, trained_ad_net):
        net, scaler = trained_ad_net
        source = generate_spatial(lower_network(net, scaler=scaler, name="x"))
        assert "mux(" in source and "insertResult" in source


class TestTaurusBackend:
    def test_compile_network(self, trained_ad_net, ad_dataset):
        net, scaler = trained_ad_net
        backend = TaurusBackend()
        pipe = backend.compile_model(net, scaler=scaler, name="ad")
        assert pipe.backend == "taurus"
        assert pipe.model_kind == "dnn"
        assert "ad.scala" in pipe.sources
        assert pipe.metadata["n_params"] == net.n_params
        preds = pipe.predict(ad_dataset.test_x)
        assert preds.shape == (ad_dataset.n_test,)

    def test_compile_svm(self, blobs_binary):
        Xtr, ytr, Xte, _ = blobs_binary
        scaler = StandardScaler().fit(Xtr)
        svm = LinearSVM(seed=0, epochs=10).fit(scaler.transform(Xtr), ytr)
        pipe = TaurusBackend().compile_model(svm, scaler=scaler, name="svm")
        assert pipe.model_kind == "svm"
        assert pipe.predict(Xte).shape == (Xte.shape[0],)

    def test_unsupported_model_raises(self):
        from repro.ml.kmeans import KMeans

        with pytest.raises(BackendError):
            TaurusBackend().compile_model(KMeans())

    def test_resource_limits_expansion(self):
        backend = TaurusBackend()
        limits = backend.resource_limits({"rows": 4, "cols": 8})
        assert limits == {"cus": 32, "mus": 32}

    def test_resource_limits_passthrough(self):
        backend = TaurusBackend()
        assert backend.resource_limits({"cus": 10}) == {"cus": 10}

    def test_constraint_check(self, trained_ad_net):
        net, scaler = trained_ad_net
        pipe = TaurusBackend().compile_model(net, scaler=scaler)
        ok = pipe.check({"performance": {"throughput": 1, "latency": 500},
                         "resources": {"cus": 256, "mus": 256}})
        assert ok.feasible
        tight = pipe.check({"resources": {"cus": 1}})
        assert not tight.feasible
        assert any("cus" in reason for reason in tight.reasons)
