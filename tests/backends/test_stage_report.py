"""Tests for the Tungsten-style per-stage simulator report."""

import pytest

from repro.backends.taurus.ir import lower_network
from repro.backends.taurus.simulator import TaurusSimulator


@pytest.fixture
def simulator(trained_ad_net):
    net, scaler = trained_ad_net
    return TaurusSimulator(lower_network(net, scaler=scaler, name="ad"))


class TestStageReport:
    def test_rows_cover_all_stages(self, simulator):
        rows = simulator.stage_report()
        kinds = [row["kind"] for row in rows]
        assert kinds[0] == "scale"
        assert kinds[-1].startswith("decision/")
        assert kinds.count("dense") == 3  # 7->10->6->1

    def test_totals_match_aggregates(self, simulator):
        rows = simulator.stage_report()
        assert sum(r["cus"] for r in rows) == simulator.resources()["cus"]
        assert sum(r["mus"] for r in rows) == simulator.resources()["mus"]

    def test_cycles_sum_to_pipeline_minus_overheads(self, simulator):
        from repro.backends.taurus.resources import DEPARSE_CYCLES, PARSE_CYCLES

        rows = simulator.stage_report()
        stage_cycles = sum(r["cycles"] for r in rows)
        assert stage_cycles + PARSE_CYCLES + DEPARSE_CYCLES == (
            simulator.pipeline_cycles()
        )

    def test_formatted_report(self, simulator):
        text = simulator.format_stage_report()
        assert "Stage" in text and "total" in text
        assert "7x10" in text
