"""Tests for the Tofino backend: MAT IR, IIsy lowering, interpreter, P4."""

import numpy as np
import pytest

from repro.backends.tofino import MatInterpreter, TofinoBackend, TofinoModel
from repro.backends.tofino.iisy import lower_kmeans, lower_svm, lower_tree
from repro.backends.tofino.mat import (
    FeatureScoreTable,
    MatPipeline,
    RangeEntry,
    TreeEntry,
    encode_key,
)
from repro.backends.tofino.p4_codegen import generate_p4
from repro.backends.tofino.resources import (
    check_entry_capacity,
    pipeline_performance,
    pipeline_resources,
)
from repro.errors import BackendError
from repro.ml.kmeans import KMeans
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def tc_models(tc_dataset):
    """Trained SVM / KMeans / tree on the IoT data (module-scoped)."""
    scaler = StandardScaler().fit(tc_dataset.train_x)
    Xtr = scaler.transform(tc_dataset.train_x)
    svm = LinearSVM(seed=0, epochs=25).fit(Xtr, tc_dataset.train_y)
    km = KMeans(n_clusters=5, seed=0).fit(Xtr)
    tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(Xtr, tc_dataset.train_y)
    return scaler, svm, km, tree


class TestMatIR:
    def test_range_entry_matches(self):
        entry = RangeEntry(lo=0, hi=10, data=(1, 2))
        assert entry.matches(0) and entry.matches(9)
        assert not entry.matches(10)

    def test_empty_range_rejected(self):
        with pytest.raises(BackendError):
            RangeEntry(lo=5, hi=5, data=(0,))

    def test_feature_table_ragged_scores_rejected(self):
        with pytest.raises(BackendError):
            FeatureScoreTable(
                name="t", feature_index=0,
                entries=[RangeEntry(0, 1, (1, 2)), RangeEntry(1, 2, (1,))],
            )

    def test_tree_entry_exclusive_outcomes(self):
        with pytest.raises(BackendError):
            TreeEntry(node=0, feature_index=0, lo=0, hi=1, next_node=1, leaf_class=2)
        with pytest.raises(BackendError):
            TreeEntry(node=0, feature_index=0, lo=0, hi=1)

    def test_pipeline_needs_decision_tail(self):
        table = FeatureScoreTable(
            name="t", feature_index=0, entries=[RangeEntry(0, 1, (0, 0))]
        )
        with pytest.raises(BackendError):
            MatPipeline(name="p", n_features=1, tables=[table])

    def test_encode_key_fixed_point(self):
        assert encode_key(1.0) == 256
        assert encode_key(-0.5) == -128


class TestSvmLowering:
    def test_mat_count_is_features_plus_vote(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        pipeline = lower_svm(svm, tc_dataset.train_x, scaler=scaler)
        assert pipeline.n_mats == tc_dataset.n_features + 1

    def test_interpreter_agrees_with_float_svm(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        pipeline = lower_svm(svm, tc_dataset.train_x, scaler=scaler)
        hw = MatInterpreter(pipeline).predict(tc_dataset.test_x)
        float_pred = svm.predict(scaler.transform(tc_dataset.test_x))
        assert float(np.mean(hw == float_pred)) > 0.9

    def test_binary_svm_two_class_scores(self, blobs_binary):
        Xtr, ytr, Xte, _ = blobs_binary
        scaler = StandardScaler().fit(Xtr)
        svm = LinearSVM(seed=0, epochs=10).fit(scaler.transform(Xtr), ytr)
        pipeline = lower_svm(svm, Xtr, scaler=scaler)
        assert pipeline.decision.n_classes == 2
        hw = MatInterpreter(pipeline).predict(Xte)
        float_pred = svm.predict(scaler.transform(Xte))
        assert float(np.mean(hw == float_pred)) > 0.95

    def test_unfit_raises(self, tc_dataset):
        with pytest.raises(BackendError):
            lower_svm(LinearSVM(), tc_dataset.train_x)


class TestKMeansLowering:
    def test_mat_count_is_cluster_count(self, tc_models):
        scaler, _, km, _ = tc_models
        pipeline = lower_kmeans(km, scaler=scaler)
        assert pipeline.n_mats == km.n_clusters

    def test_interpreter_agrees_with_float_kmeans(self, tc_models, tc_dataset):
        scaler, _, km, _ = tc_models
        pipeline = lower_kmeans(km, scaler=scaler)
        hw = MatInterpreter(pipeline).predict(tc_dataset.test_x)
        float_pred = km.predict(scaler.transform(tc_dataset.test_x))
        assert float(np.mean(hw == float_pred)) > 0.95

    def test_unfit_raises(self):
        with pytest.raises(BackendError):
            lower_kmeans(KMeans())


class TestTreeLowering:
    def test_mat_count_tracks_depth(self, tc_models):
        scaler, _, _, tree = tc_models
        pipeline = lower_tree(tree, scaler=scaler)
        assert pipeline.n_mats == tree.depth + 1  # levels + leaf decision

    def test_interpreter_matches_tree_exactly_on_train(self, tc_models, tc_dataset):
        scaler, _, _, tree = tc_models
        pipeline = lower_tree(tree, scaler=scaler)
        hw = MatInterpreter(pipeline).predict(tc_dataset.train_x)
        float_pred = tree.predict(scaler.transform(tc_dataset.train_x))
        assert float(np.mean(hw == float_pred)) > 0.99

    def test_stump_lowering(self, blobs_binary):
        Xtr, ytr, Xte, _ = blobs_binary
        tree = DecisionTreeClassifier(max_depth=1, seed=0).fit(Xtr, ytr)
        pipeline = lower_tree(tree)
        hw = MatInterpreter(pipeline).predict(Xte)
        assert float(np.mean(hw == tree.predict(Xte))) > 0.99


class TestResources:
    def test_performance_line_rate(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        pipeline = lower_svm(svm, tc_dataset.train_x, scaler=scaler)
        perf = pipeline_performance(pipeline)
        assert perf.throughput_gpps == 1.0
        assert perf.latency_ns > 100

    def test_resource_usage_keys(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        pipeline = lower_svm(svm, tc_dataset.train_x, scaler=scaler)
        usage = pipeline_resources(pipeline)
        assert usage["mats"] == pipeline.n_mats
        assert usage["entries"] == pipeline.total_entries

    def test_entry_capacity_check(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        pipeline = lower_svm(svm, tc_dataset.train_x, scaler=scaler)
        tiny = TofinoModel(max_mats=32, max_entries_per_table=4)
        assert check_entry_capacity(pipeline, tiny)  # violations reported
        assert not check_entry_capacity(pipeline, TofinoModel())


class TestP4Codegen:
    def test_svm_program_structure(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        pipeline = lower_svm(svm, tc_dataset.train_x, scaler=scaler, name="tc_svm")
        source = generate_p4(pipeline)
        assert "#include <v1model.p4>" in source
        assert "const entries" in source
        assert "svm_feature_0" in source
        assert "V1Switch" in source

    def test_kmeans_program_structure(self, tc_models):
        scaler, _, km, _ = tc_models
        pipeline = lower_kmeans(km, scaler=scaler, name="tc_km")
        source = generate_p4(pipeline)
        assert "compute_dist_0" in source
        assert "meta.dist0" in source

    def test_tree_program_structure(self, tc_models):
        scaler, _, _, tree = tc_models
        pipeline = lower_tree(tree, scaler=scaler, name="tc_tree")
        source = generate_p4(pipeline)
        assert "tree_level_0" in source
        assert "set_leaf_0" in source
        assert "meta.node: exact;" in source


class TestTofinoBackend:
    def test_compile_svm(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        backend = TofinoBackend()
        pipe = backend.compile_model(
            svm, scaler=scaler, train_x=tc_dataset.train_x, name="svm"
        )
        assert pipe.backend == "tofino"
        assert "svm.p4" in pipe.sources
        assert pipe.resources["mats"] == 8

    def test_compile_svm_without_train_x_raises(self, tc_models):
        scaler, svm, _, _ = tc_models
        with pytest.raises(BackendError):
            TofinoBackend().compile_model(svm, scaler=scaler)

    def test_compile_kmeans_and_tree(self, tc_models, tc_dataset):
        scaler, _, km, tree = tc_models
        backend = TofinoBackend()
        km_pipe = backend.compile_model(km, scaler=scaler, name="km")
        tree_pipe = backend.compile_model(tree, scaler=scaler, name="tree")
        assert km_pipe.model_kind == "kmeans"
        assert tree_pipe.model_kind == "decision_tree"

    def test_unsupported_model_raises(self, trained_ad_net):
        net, _ = trained_ad_net
        with pytest.raises(BackendError):
            TofinoBackend().compile_model(net)

    def test_resource_limits(self):
        backend = TofinoBackend()
        assert backend.resource_limits({"mats": 5}) == {"mats": 5}
        assert backend.resource_limits({"tables": 7}) == {"mats": 7}
        assert backend.resource_limits({}) == {"mats": 32}

    def test_feature_pruning_ranks_by_impact(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        keep = TofinoBackend.prune_svm_features(svm, tc_dataset.train_x, 3)
        assert len(keep) == 3
        assert all(0 <= i < tc_dataset.n_features for i in keep)

    def test_pruning_bounds(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        with pytest.raises(BackendError):
            TofinoBackend.prune_svm_features(svm, tc_dataset.train_x, 0)

    def test_mat_constraint_verdict(self, tc_models, tc_dataset):
        scaler, svm, _, _ = tc_models
        pipe = TofinoBackend().compile_model(
            svm, scaler=scaler, train_x=tc_dataset.train_x
        )
        verdict = pipe.check({"resources": {"mats": 4}})
        assert not verdict.feasible
