"""Budget-boundary accounting, identical across every backend vocabulary.

One resource-accounting contract serves all three targets — Tofino MATs,
Taurus CUs/MUs (with the ``rows``/``cols`` shorthand), FPGA LUT/FF/BRAM
percentages — and these tests pin its edges for each of them:

* a zero budget rejects *any* use of the resource (but zero use passes),
* exactly-at-budget is feasible (the limit is inclusive),
* one unit over is rejected, and the error names the exhausted resource
  with the shared ``"name: used > limit"`` wording, so single-switch
  feasibility messages and fabric placement errors read the same.
"""

import pytest

from repro.backends.base import ResourceUsage
from repro.backends.registry import get_backend
from repro.errors import PlacementError
from repro.fabric import check_budget

#: (backend, resource, an exactly-at-budget level, the step to go over).
BOUNDARIES = [
    ("tofino", "mats", 32, 1),
    ("taurus", "cus", 256, 1),
    ("taurus", "mus", 256, 1),
    ("fpga", "lut_pct", 100.0, 0.5),
    ("fpga", "ff_pct", 100.0, 0.5),
    ("fpga", "bram_pct", 100.0, 0.5),
]

IDS = [f"{target}-{resource}" for target, resource, _, _ in BOUNDARIES]


@pytest.mark.parametrize("target,resource,limit,step", BOUNDARIES, ids=IDS)
class TestBudgetBoundaries:
    def test_zero_budget_rejects_any_use(self, target, resource, limit, step):
        limits = get_backend(target).resource_limits({resource: 0})
        assert limits[resource] == 0
        check_budget("dev0", {resource: 0}, limits)  # zero use still fits
        with pytest.raises(PlacementError) as err:
            check_budget("dev0", {resource: step}, limits)
        assert resource in str(err.value)

    def test_exactly_at_budget_accepts(self, target, resource, limit, step):
        limits = get_backend(target).resource_limits({resource: limit})
        check_budget("dev0", {resource: limit}, limits)
        assert ResourceUsage({resource: limit}).within(limits)

    def test_one_over_rejects_and_names_resource(self, target, resource,
                                                 limit, step):
        limits = get_backend(target).resource_limits({resource: limit})
        over = limit + step
        with pytest.raises(PlacementError) as err:
            check_budget("dev0", {resource: over}, limits)
        message = str(err.value)
        assert "dev0" in message
        assert f"{resource}: {over} > limit {limit}" in message

    def test_violations_wording_matches_base_model(self, target, resource,
                                                   limit, step):
        # The placement error is built from ResourceUsage.violations, so
        # the two layers can never drift apart in wording.
        usage = ResourceUsage({resource: limit + step})
        limits = get_backend(target).resource_limits({resource: limit})
        violations = usage.violations(limits)
        assert violations == [f"{resource}: {limit + step} > limit {limit}"]


def test_taurus_rows_cols_shorthand_expands_to_both_units():
    limits = get_backend("taurus").resource_limits({"rows": 4, "cols": 4})
    assert limits == {"cus": 16, "mus": 16}


def test_unconstrained_resources_default_to_the_full_envelope():
    assert get_backend("tofino").resource_limits({})["mats"] == 32
    fpga = get_backend("fpga").resource_limits({})
    assert fpga == {"lut_pct": 100.0, "ff_pct": 100.0, "bram_pct": 100.0}
