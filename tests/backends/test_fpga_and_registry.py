"""Tests for the FPGA backend, the shared base classes, and the registry."""

import numpy as np
import pytest

from repro.backends import available_backends, get_backend
from repro.backends.base import (
    FeasibilityVerdict,
    PerformanceEstimate,
    ResourceUsage,
)
from repro.backends.fpga import FpgaBackend, FpgaDevice
from repro.backends.fpga.power import SHELL_POWER_W, estimate_power_watts
from repro.backends.fpga.resources import (
    SHELL_BRAM_PCT,
    SHELL_FF_PCT,
    SHELL_LUT_PCT,
    dnn_macs,
    dnn_params,
    estimate_fpga_utilisation,
    loopback_utilisation,
)
from repro.backends.registry import register_backend
from repro.errors import BackendError


class TestResourceUsage:
    def test_lookup(self):
        usage = ResourceUsage({"cus": 5})
        assert usage["cus"] == 5
        with pytest.raises(BackendError):
            usage["nope"]

    def test_within_and_violations(self):
        usage = ResourceUsage({"cus": 5, "mus": 10})
        assert usage.within({"cus": 5})
        assert not usage.within({"mus": 9})
        assert len(usage.violations({"cus": 4, "mus": 9})) == 2

    def test_unknown_limit_ignored(self):
        usage = ResourceUsage({"cus": 5})
        assert usage.within({"bram": 1})


class TestPerformanceEstimate:
    def test_meets(self):
        perf = PerformanceEstimate(throughput_gpps=1.0, latency_ns=100.0)
        assert perf.meets({"throughput": 1.0, "latency": 500.0}) == []
        assert len(perf.meets({"throughput": 2.0})) == 1
        assert len(perf.meets({"latency": 50.0})) == 1

    def test_positive_required(self):
        with pytest.raises(BackendError):
            PerformanceEstimate(throughput_gpps=0.0, latency_ns=1.0)


class TestFeasibilityVerdict:
    def test_ok_and_fail(self):
        assert FeasibilityVerdict.ok().feasible
        failed = FeasibilityVerdict.fail(["too big"])
        assert not failed.feasible
        assert failed.reasons == ("too big",)


class TestRegistry:
    def test_known_backends(self):
        assert set(available_backends()) >= {"taurus", "tofino", "fpga"}

    def test_get_backend_case_insensitive(self):
        assert get_backend("Taurus").name == "taurus"

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError):
            get_backend("gpu")

    def test_register_custom(self):
        class Dummy:
            name = "dummy"

        register_backend("dummy-test", lambda: Dummy())
        assert get_backend("dummy-test").name == "dummy"

    def test_register_non_callable_raises(self):
        with pytest.raises(BackendError):
            register_backend("bad", 42)


class TestFpgaResourceModel:
    def test_param_and_mac_counts(self):
        assert dnn_params([7, 12, 8, 1]) == 8 * 12 + 13 * 8 + 9
        assert dnn_macs([7, 12, 8, 1]) == 7 * 12 + 12 * 8 + 8

    def test_shell_floor(self):
        shell = loopback_utilisation()
        assert shell["lut_pct"] == SHELL_LUT_PCT
        assert shell["ff_pct"] == SHELL_FF_PCT
        assert shell["bram_pct"] == SHELL_BRAM_PCT

    def test_utilisation_grows_with_model(self):
        small = estimate_fpga_utilisation([7, 8, 1])
        large = estimate_fpga_utilisation([30, 32, 16, 1])
        assert large["lut_pct"] > small["lut_pct"]
        assert large["ff_pct"] > small["ff_pct"]

    def test_bram_constant(self):
        small = estimate_fpga_utilisation([7, 8, 1])
        large = estimate_fpga_utilisation([30, 32, 16, 1])
        assert small["bram_pct"] == large["bram_pct"] == SHELL_BRAM_PCT

    def test_utilisation_in_table5_band(self):
        # The paper's ~200-700-parameter models land in the 6.5-7.5% band.
        usage = estimate_fpga_utilisation([7, 12, 8, 1])
        assert 6.0 < usage["lut_pct"] < 8.0

    def test_power_model(self):
        shell_power = estimate_power_watts(loopback_utilisation())
        assert shell_power == pytest.approx(SHELL_POWER_W)
        model_power = estimate_power_watts(estimate_fpga_utilisation([7, 12, 8, 1]))
        assert SHELL_POWER_W < model_power < 20.0

    def test_device_validation(self):
        with pytest.raises(BackendError):
            FpgaDevice(luts=0)


class TestFpgaBackend:
    def test_compile_reports_fpga_resources(self, trained_ad_net, ad_dataset):
        net, scaler = trained_ad_net
        pipe = FpgaBackend().compile_model(net, scaler=scaler, name="ad")
        assert pipe.backend == "fpga"
        assert "lut_pct" in pipe.resources.usage
        assert pipe.metadata["power_watts"] > SHELL_POWER_W
        assert pipe.predict(ad_dataset.test_x).shape == (ad_dataset.n_test,)

    def test_functional_equivalence_with_taurus(self, trained_ad_net, ad_dataset):
        from repro.backends.taurus import TaurusBackend

        net, scaler = trained_ad_net
        fpga = FpgaBackend().compile_model(net, scaler=scaler)
        taurus = TaurusBackend().compile_model(net, scaler=scaler)
        assert np.array_equal(
            fpga.predict(ad_dataset.test_x), taurus.predict(ad_dataset.test_x)
        )

    def test_performance_reflects_clock(self, trained_ad_net):
        net, scaler = trained_ad_net
        pipe = FpgaBackend().compile_model(net, scaler=scaler)
        assert pipe.performance.throughput_gpps == pytest.approx(0.25)
        assert pipe.performance.latency_ns > 0

    def test_resource_limits_defaults(self):
        limits = FpgaBackend().resource_limits({})
        assert limits == {"lut_pct": 100.0, "ff_pct": 100.0, "bram_pct": 100.0}

    def test_unsupported_model_raises(self):
        from repro.ml.tree import DecisionTreeClassifier

        with pytest.raises(BackendError):
            FpgaBackend().compile_model(DecisionTreeClassifier())
