"""Failure-injection tests: the compiler must degrade gracefully.

Covers crashing backends, degenerate datasets, unsatisfiable constraint
sets, and hostile inputs to the lowered pipelines.
"""

import numpy as np
import pytest

import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.backends.registry import register_backend
from repro.backends.taurus import TaurusBackend
from repro.backends.taurus.ir import lower_network
from repro.backends.taurus.simulator import TaurusSimulator
from repro.core.evaluator import ModelEvaluator
from repro.datasets import Dataset, load_nslkdd
from repro.errors import BackendError, InfeasibleError


def make_spec(name, dataset, algorithms=("dnn",)):
    @DataLoader
    def loader():
        return dataset

    return Model(
        {
            "optimization_metric": ["f1"],
            "algorithm": list(algorithms),
            "name": name,
            "data_loader": loader,
        }
    )


@pytest.fixture(scope="module")
def small_ad():
    return load_nslkdd(n_train=300, n_test=120, seed=7)


class TestCrashingBackend:
    """A backend that throws on every lowering attempt."""

    def test_evaluator_converts_crash_to_infeasible(self, small_ad):
        class ExplodingBackend(TaurusBackend):
            def compile_model(self, *args, **kwargs):
                raise BackendError("injected lowering failure")

        spec = make_spec("ad", small_ad)
        evaluator = ModelEvaluator(
            spec, small_ad, "dnn", ExplodingBackend(),
            {"performance": {}, "resources": {}}, seed=0, train_epochs=3,
        )
        out = evaluator.evaluate(
            {"n_layers": 1, "width": 4, "taper": 1.0, "lr_log10": -2.0,
             "batch_size": 32, "optimizer": "adam"}
        )
        assert not out.feasible
        assert "injected lowering failure" in out.metrics["error"]

    def test_generate_raises_infeasible_when_all_crash(self, small_ad):
        class ExplodingBackend(TaurusBackend):
            def compile_model(self, *args, **kwargs):
                raise BackendError("injected lowering failure")

        register_backend("exploding-taurus", ExplodingBackend)
        platform = Platforms.Taurus()
        platform.target = "exploding-taurus"  # reroute to the broken target
        # constraints() resolves through the registry, so keep defaults.
        from repro.alchemy.platforms import _DEFAULTS

        _DEFAULTS.setdefault("exploding-taurus", _DEFAULTS["taurus"])
        platform.schedule(make_spec("ad", small_ad))
        with pytest.raises(InfeasibleError):
            repro.generate(platform, budget=3, warmup=2, train_epochs=3, seed=0)


class TestUnsatisfiableConstraints:
    def test_zero_resources_rejected_before_search(self, small_ad):
        platform = Platforms.Taurus().constrain(resources={"rows": 1, "cols": 1})
        platform.schedule(make_spec("ad", small_ad))
        with pytest.raises(InfeasibleError):
            repro.generate(platform, budget=3, warmup=2, train_epochs=3, seed=0)

    def test_impossible_latency_yields_no_feasible_model(self, small_ad):
        platform = Platforms.Taurus().constrain(
            performance={"latency": 1}, resources={"rows": 16, "cols": 16}
        )
        platform.schedule(make_spec("ad", small_ad))
        with pytest.raises(InfeasibleError):
            repro.generate(platform, budget=3, warmup=2, train_epochs=3, seed=0)


class TestDegenerateDatasets:
    def test_single_class_dataset_is_infeasible_not_a_crash(self):
        rng = np.random.default_rng(0)
        dataset = Dataset(
            train_x=rng.normal(size=(40, 3)),
            train_y=np.zeros(40, dtype=int),
            test_x=rng.normal(size=(10, 3)),
            test_y=np.zeros(10, dtype=int),
            name="degenerate",
        )
        platform = Platforms.Taurus().constrain(resources={"rows": 16, "cols": 16})
        platform.schedule(make_spec("deg", dataset))
        # Single-class data can still train a (trivial) sigmoid head; the
        # compile must complete or fail cleanly, never crash.
        try:
            report = repro.generate(platform, budget=2, warmup=1,
                                    train_epochs=2, seed=0)
            assert report.best is not None
        except InfeasibleError:
            pass

    def test_constant_features_survive_lowering(self, small_ad):
        dataset = Dataset(
            train_x=np.hstack([small_ad.train_x[:, :2],
                               np.ones((small_ad.n_train, 1))]),
            train_y=small_ad.train_y,
            test_x=np.hstack([small_ad.test_x[:, :2],
                              np.ones((small_ad.n_test, 1))]),
            test_y=small_ad.test_y,
            name="constant-feature",
        )
        spec = make_spec("cf", dataset)
        evaluator = ModelEvaluator(
            spec, dataset, "dnn", TaurusBackend(),
            {"performance": {}, "resources": {}}, seed=0, train_epochs=5,
        )
        out = evaluator.evaluate(
            {"n_layers": 1, "width": 4, "taper": 1.0, "lr_log10": -2.0,
             "batch_size": 32, "optimizer": "adam"}
        )
        assert np.isfinite(out.objective)


class TestHostilePipelineInputs:
    def test_simulator_saturates_extreme_inputs(self, trained_ad_net):
        net, scaler = trained_ad_net
        sim = TaurusSimulator(lower_network(net, scaler=scaler))
        extreme = np.full((4, 7), 1e12)
        out = sim.predict(extreme)  # must not overflow/crash
        assert set(np.unique(out)) <= {0, 1}

    def test_simulator_handles_negative_inputs(self, trained_ad_net):
        net, scaler = trained_ad_net
        sim = TaurusSimulator(lower_network(net, scaler=scaler))
        out = sim.predict(np.full((4, 7), -1e12))
        assert set(np.unique(out)) <= {0, 1}

    def test_mat_interpreter_out_of_profile_values(self, tc_dataset):
        from repro.backends.tofino import TofinoBackend
        from repro.ml import LinearSVM, StandardScaler

        scaler = StandardScaler().fit(tc_dataset.train_x)
        svm = LinearSVM(seed=0, epochs=10).fit(
            scaler.transform(tc_dataset.train_x), tc_dataset.train_y
        )
        pipe = TofinoBackend().compile_model(
            svm, scaler=scaler, train_x=tc_dataset.train_x
        )
        wild = np.full((3, tc_dataset.n_features), 1e7)
        out = pipe.predict(wild)  # sentinel range entries must catch this
        assert out.shape == (3,)

    def test_wrong_feature_count_rejected(self, trained_ad_net):
        net, scaler = trained_ad_net
        pipe = TaurusBackend().compile_model(net, scaler=scaler)
        with pytest.raises(Exception):
            pipe.predict(np.ones((2, 3)))
