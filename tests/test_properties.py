"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesopt.space import Categorical, DesignSpace, Integer, Ordinal, Real
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    v_measure_score,
)
from repro.ml.quantization import (
    FixedPointFormat,
    dequantize,
    quantization_error_bound,
    quantize,
    quantize_to_int,
)
from repro.netsim.flowmarker import FlowMarkerSpec, build_flowmarker, fuse_bins
from repro.netsim.flow import Flow
from repro.netsim.packet import Packet

# --------------------------------------------------------------------------- #
# Quantization
# --------------------------------------------------------------------------- #
formats = st.builds(
    FixedPointFormat,
    integer_bits=st.integers(1, 10),
    fraction_bits=st.integers(1, 12),
)


@given(
    fmt=formats,
    values=st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=1, max_size=50
    ),
)
@settings(max_examples=100, deadline=None)
def test_quantization_error_bounded_in_range(fmt, values):
    arr = np.array(values)
    in_range = (arr >= fmt.min_value) & (arr <= fmt.max_value)
    q = quantize(arr, fmt)
    bound = quantization_error_bound(fmt)
    assert np.all(np.abs(q[in_range] - arr[in_range]) <= bound + 1e-12)


@given(
    fmt=formats,
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
    ),
)
@settings(max_examples=100, deadline=None)
def test_quantization_always_saturates_to_range(fmt, values):
    q = quantize(np.array(values), fmt)
    assert np.all(q <= fmt.max_value + 1e-12)
    assert np.all(q >= fmt.min_value - 1e-12)


@given(
    fmt=formats,
    values=st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=1, max_size=30
    ),
)
@settings(max_examples=100, deadline=None)
def test_quantization_idempotent(fmt, values):
    arr = np.array(values)
    once = quantize(arr, fmt)
    assert np.array_equal(once, quantize(once, fmt))


@given(fmt=formats, codes=st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_dequantize_quantize_round_trip_on_codes(fmt, codes):
    lo = -(2 ** (fmt.integer_bits + fmt.fraction_bits))
    hi = 2 ** (fmt.integer_bits + fmt.fraction_bits) - 1
    arr = np.clip(np.array(codes), lo, hi)
    assert np.array_equal(quantize_to_int(dequantize(arr, fmt), fmt), arr)


# --------------------------------------------------------------------------- #
# Design space
# --------------------------------------------------------------------------- #
@st.composite
def design_spaces(draw):
    params = []
    n = draw(st.integers(1, 5))
    for i in range(n):
        kind = draw(st.sampled_from(["real", "integer", "ordinal", "categorical"]))
        name = f"p{i}"
        if kind == "real":
            lo = draw(st.floats(-100, 99, allow_nan=False))
            hi = draw(st.floats(min_value=lo + 0.1, max_value=lo + 100, allow_nan=False))
            params.append(Real(name, lo, hi))
        elif kind == "integer":
            lo = draw(st.integers(-50, 49))
            hi = draw(st.integers(lo, lo + 100))
            params.append(Integer(name, lo, hi))
        elif kind == "ordinal":
            values = draw(
                st.lists(st.integers(0, 100), min_size=1, max_size=5, unique=True)
            )
            params.append(Ordinal(name, tuple(values)))
        else:
            values = draw(
                st.lists(st.text(min_size=1, max_size=3), min_size=1, max_size=4,
                         unique=True)
            )
            params.append(Categorical(name, tuple(values)))
    return DesignSpace(params)


@given(space=design_spaces(), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_samples_always_validate(space, seed):
    rng = np.random.default_rng(seed)
    for config in space.sample(rng, 10):
        space.validate(config)
        assert space.contains(config)


@given(space=design_spaces(), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_encode_dimension_matches_space(space, seed):
    rng = np.random.default_rng(seed)
    configs = space.sample(rng, 3)
    X = space.encode_many(configs)
    assert X.shape == (3, len(space))
    assert np.all(np.isfinite(X))


@given(space=design_spaces())
@settings(max_examples=40, deadline=None)
def test_json_round_trip_preserves_sampling(space):
    rebuilt = DesignSpace.from_json(space.to_json())
    rng = np.random.default_rng(0)
    for config in rebuilt.sample(rng, 5):
        space.validate(config)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
labels = st.lists(st.integers(0, 3), min_size=2, max_size=60)


@given(y=labels)
@settings(max_examples=60, deadline=None)
def test_perfect_prediction_maximizes_metrics(y):
    assert accuracy_score(y, y) == 1.0
    if len(set(y)) > 1:
        assert f1_score(y, y, average="macro") == pytest.approx(1.0)
        assert v_measure_score(y, y) == pytest.approx(1.0)


@given(y_true=labels, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_metric_ranges(y_true, seed):
    rng = np.random.default_rng(seed)
    y_pred = rng.integers(0, 4, len(y_true))
    for metric in (accuracy_score, precision_score, recall_score):
        assert 0.0 <= metric(y_true, y_pred) <= 1.0
    assert 0.0 <= f1_score(y_true, y_pred, average="macro") <= 1.0
    assert 0.0 <= v_measure_score(y_true, y_pred) <= 1.0 + 1e-9


@given(y_true=labels, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_confusion_matrix_total(y_true, seed):
    rng = np.random.default_rng(seed)
    y_pred = rng.integers(0, 4, len(y_true))
    assert confusion_matrix(y_true, y_pred).sum() == len(y_true)


@given(y_true=labels, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_v_measure_invariant_to_cluster_relabeling(y_true, seed):
    rng = np.random.default_rng(seed)
    y_pred = rng.integers(0, 4, len(y_true))
    permutation = rng.permutation(4)
    relabeled = permutation[y_pred]
    assert v_measure_score(y_true, y_pred) == pytest.approx(
        v_measure_score(y_true, relabeled)
    )


# --------------------------------------------------------------------------- #
# Flowmarkers
# --------------------------------------------------------------------------- #
@st.composite
def simple_flows(draw):
    n = draw(st.integers(1, 20))
    gaps = draw(st.lists(st.floats(0.0, 1000.0, allow_nan=False), min_size=n - 1,
                         max_size=n - 1)) if n > 1 else []
    sizes = draw(st.lists(st.integers(64, 1518), min_size=n, max_size=n))
    flow = Flow()
    t = 0.0
    for i in range(n):
        if i > 0:
            t += gaps[i - 1]
        flow.add(Packet(timestamp=t, size=sizes[i], src_ip=1, dst_ip=2,
                        src_port=1, dst_port=2))
    return flow


@given(flow=simple_flows())
@settings(max_examples=60, deadline=None)
def test_flowmarker_mass_conservation(flow):
    spec = FlowMarkerSpec()
    marker = build_flowmarker(flow, spec)
    assert marker[: spec.pl_bins].sum() == len(flow)
    assert marker[spec.pl_bins :].sum() == max(0, len(flow) - 1)
    assert np.all(marker >= 0)


@given(flow=simple_flows(), factor=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_fuse_bins_preserves_mass(flow, factor):
    marker = build_flowmarker(flow)
    fused = fuse_bins(marker, factor)
    assert fused.sum() == pytest.approx(marker.sum())
    assert fused.shape[0] == int(np.ceil(marker.shape[0] / factor))
