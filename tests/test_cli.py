"""Tests for the command-line compiler."""

import os

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_nslkdd, save_csv_dataset


class TestParser:
    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_app_and_train_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--app", "ad", "--train", "x.csv"])

    def test_defaults(self):
        args = build_parser().parse_args(["--app", "ad"])
        assert args.target == "taurus"
        assert args.budget == 20
        assert args.metric == "f1"

    def test_repeatable_algorithm(self):
        args = build_parser().parse_args(
            ["--app", "tc", "--algorithm", "svm", "--algorithm", "decision_tree"]
        )
        assert args.algorithm == ["svm", "decision_tree"]


class TestMain:
    def test_train_without_test_errors(self, capsys):
        assert main(["--train", "x.csv"]) == 2
        assert "requires --test" in capsys.readouterr().err

    def test_csv_compile_end_to_end(self, tmp_path, capsys):
        dataset = load_nslkdd(n_train=250, n_test=100, seed=7)
        train_csv, test_csv = save_csv_dataset(dataset, str(tmp_path), prefix="ad")
        out_dir = tmp_path / "bundle"
        code = main(
            [
                "--train", train_csv,
                "--test", test_csv,
                "--name", "csv_ad",
                "--budget", "3",
                "--out", str(out_dir),
                "--seed", "0",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "csv_ad" in stdout
        assert os.path.exists(out_dir / "report.json")
        assert os.path.exists(out_dir / "csv_ad")

    def test_builtin_app_tofino(self, capsys):
        code = main(
            ["--app", "tc", "--target", "tofino",
             "--algorithm", "decision_tree", "--budget", "3", "--seed", "0"]
        )
        assert code == 0
        assert "decision_tree" in capsys.readouterr().out
