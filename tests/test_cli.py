"""Tests for the command-line compiler."""

import os

import pytest

from repro.cli import build_parser, build_serve_parser, main
from repro.datasets import load_nslkdd, save_csv_dataset


class TestParser:
    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_app_and_train_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--app", "ad", "--train", "x.csv"])

    def test_defaults(self):
        args = build_parser().parse_args(["--app", "ad"])
        assert args.target == "taurus"
        assert args.budget == 20
        assert args.metric == "f1"

    def test_repeatable_algorithm(self):
        args = build_parser().parse_args(
            ["--app", "tc", "--algorithm", "svm", "--algorithm", "decision_tree"]
        )
        assert args.algorithm == ["svm", "decision_tree"]

    def test_parallel_flag_defaults(self):
        args = build_parser().parse_args(["--app", "ad"])
        assert args.workers == 1
        assert args.batch_size is None
        assert args.cache_dir is None

    def test_parallel_flags_parse(self):
        args = build_parser().parse_args(
            ["--app", "ad", "--workers", "4", "--batch-size", "2",
             "--cache-dir", "cache/"]
        )
        assert args.workers == 4
        assert args.batch_size == 2
        assert args.cache_dir == "cache/"


class TestServeParser:
    def test_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.pipelines == "bd"
        assert args.batch_size == 256
        assert args.max_latency_us is None
        assert args.queue_depth == 1024
        assert args.drop_policy == "block"

    def test_all_flags_parse(self):
        args = build_serve_parser().parse_args(
            ["--pipelines", "bd,tc", "--batch-size", "64",
             "--max-latency-us", "500", "--queue-depth", "128",
             "--drop-policy", "tail-drop", "--infer-workers", "4",
             "--speed", "10", "--device-us", "250", "--flows", "50"]
        )
        assert args.pipelines == "bd,tc"
        assert args.batch_size == 64
        assert args.max_latency_us == 500.0
        assert args.queue_depth == 128
        assert args.drop_policy == "tail-drop"
        assert args.infer_workers == 4
        assert args.speed == 10.0
        assert args.device_us == 250.0

    def test_bad_drop_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_serve_parser().parse_args(["--drop-policy", "random-early"])

    def test_head_drop_is_a_valid_policy(self):
        args = build_serve_parser().parse_args(["--drop-policy", "head-drop"])
        assert args.drop_policy == "head-drop"

    def test_priorities_and_swap_after_parse(self):
        args = build_serve_parser().parse_args(
            ["--priorities", "bd=4,ad=1", "--swap-after", "500"]
        )
        assert args.priorities == "bd=4,ad=1"
        assert args.swap_after == 500

    def test_bad_priorities_errors(self, capsys):
        assert main(["serve", "--pipelines", "bd",
                     "--priorities", "bd=0"]) == 2
        assert "--priorities" in capsys.readouterr().err
        assert main(["serve", "--pipelines", "bd",
                     "--priorities", "nope=3"]) == 2
        assert "--priorities" in capsys.readouterr().err

    def test_bad_swap_after_errors(self, capsys):
        assert main(["serve", "--pipelines", "bd", "--swap-after", "0"]) == 2
        assert "--swap-after" in capsys.readouterr().err

    def test_unknown_pipeline_errors(self, capsys):
        assert main(["serve", "--pipelines", "bd,nope"]) == 2
        assert "--pipelines" in capsys.readouterr().err

    def test_bad_queue_depth_errors(self, capsys):
        assert main(["serve", "--queue-depth", "0"]) == 2
        assert "--queue-depth" in capsys.readouterr().err

    def test_serve_end_to_end_tail_drop(self, capsys):
        code = main(
            ["serve", "--pipelines", "bd", "--flows", "30",
             "--batch-size", "32", "--max-latency-us", "2000",
             "--queue-depth", "64", "--drop-policy", "tail-drop",
             "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[bd]" in out
        assert "latency us" in out

    def test_serve_end_to_end_priorities_and_swap(self, capsys):
        code = main(
            ["serve", "--pipelines", "bd", "--flows", "20",
             "--batch-size", "32", "--queue-depth", "64",
             "--drop-policy", "head-drop", "--priorities", "bd=2",
             "--swap-after", "100", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route weights: bd=2" in out
        assert "rolling swap completed: bd -> v2" in out
        assert "pipeline swaps: 1" in out


class TestMain:
    def test_train_without_test_errors(self, capsys):
        assert main(["--train", "x.csv"]) == 2
        assert "requires --test" in capsys.readouterr().err

    def test_csv_compile_end_to_end(self, tmp_path, capsys):
        dataset = load_nslkdd(n_train=250, n_test=100, seed=7)
        train_csv, test_csv = save_csv_dataset(dataset, str(tmp_path), prefix="ad")
        out_dir = tmp_path / "bundle"
        code = main(
            [
                "--train", train_csv,
                "--test", test_csv,
                "--name", "csv_ad",
                "--budget", "3",
                "--out", str(out_dir),
                "--seed", "0",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "csv_ad" in stdout
        assert os.path.exists(out_dir / "report.json")
        assert os.path.exists(out_dir / "csv_ad")

    def test_builtin_app_tofino(self, capsys):
        code = main(
            ["--app", "tc", "--target", "tofino",
             "--algorithm", "decision_tree", "--budget", "3", "--seed", "0"]
        )
        assert code == 0
        assert "decision_tree" in capsys.readouterr().out

    def test_bad_workers_errors(self, capsys):
        code = main(["--app", "tc", "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_batch_size_errors(self, capsys):
        code = main(["--app", "tc", "--batch-size", "0"])
        assert code == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_parallel_compile_matches_serial(self, capsys):
        argv = ["--app", "tc", "--target", "tofino",
                "--algorithm", "decision_tree", "--budget", "4", "--seed", "0"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main([*argv, "--workers", "2", "--batch-size", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out  # same report text, not just exit code

    def test_cache_dir_spills_evaluations(self, tmp_path, capsys):
        cache_dir = tmp_path / "evals"
        code = main(
            ["--app", "tc", "--target", "tofino", "--algorithm", "decision_tree",
             "--budget", "3", "--seed", "0", "--workers", "2",
             "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        spills = list(cache_dir.glob("*.json"))
        assert spills, "expected per-family cache spill files"


class TestShardedCli:
    def test_shard_flag_defaults(self):
        args = build_parser().parse_args(["--app", "ad"])
        assert args.shards == 1
        assert args.launcher is None
        assert args.shard_dir is None
        assert args.starts == 1

    def test_shard_flags_parse(self):
        args = build_parser().parse_args(
            ["--app", "ad", "--shards", "4", "--launcher", "subprocess",
             "--shard-dir", "/tmp/s", "--starts", "2"]
        )
        assert args.shards == 4
        assert args.launcher == "subprocess"
        assert args.shard_dir == "/tmp/s"
        assert args.starts == 2

    def test_unknown_launcher_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--app", "ad", "--launcher", "carrier"])

    def test_invalid_shards_exit_code(self, capsys):
        assert main(["--app", "tc", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_fault_tolerance_flags_parse(self):
        args = build_parser().parse_args(
            ["--app", "ad", "--granularity", "shard", "--max-retries", "2",
             "--stale-after", "15"]
        )
        assert args.granularity == "shard"
        assert args.max_retries == 2
        assert args.stale_after == 15.0
        defaults = build_parser().parse_args(["--app", "ad"])
        assert defaults.granularity is None
        assert defaults.max_retries == 0

    def test_invalid_max_retries_exit_code(self, capsys):
        assert main(["--app", "tc", "--max-retries", "-1"]) == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_cli_retry_recovers_from_injected_crash(
        self, monkeypatch, tmp_path, capsys
    ):
        # --max-retries wires through to the driver: a unit that fails
        # once must not abort the CLI run.
        monkeypatch.setenv(
            "REPRO_CHAOS_FAIL", f"unit-0000.a0@{tmp_path}/marker"
        )
        code = main(
            ["--app", "tc", "--target", "tofino",
             "--algorithm", "decision_tree", "--budget", "2", "--seed", "0",
             "--max-retries", "1"]
        )
        assert code == 0
        assert "config:" in capsys.readouterr().out

    def test_sharded_run_reproduces_serial_report(self, capsys):
        argv = ["--app", "tc", "--target", "tofino",
                "--algorithm", "decision_tree", "--algorithm", "svm",
                "--budget", "3", "--seed", "0"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main([*argv, "--shards", "2", "--launcher", "inprocess"]) == 0
        sharded_out = capsys.readouterr().out
        # The compile-report block (everything before the shard
        # accounting) must be identical, config line included.
        serial_report = serial_out.strip().splitlines()
        sharded_lines = sharded_out.strip().splitlines()
        assert serial_report[0] == sharded_lines[0]
        for line in serial_report:
            if line.startswith("config:"):
                assert line in sharded_lines
        assert any("shards: 2" in line for line in sharded_lines)
        assert any("pareto[" in line for line in sharded_lines)

    def test_sharded_run_writes_deployment_bundle(self, tmp_path, capsys):
        out_dir = tmp_path / "bundle"
        code = main(
            ["--app", "tc", "--target", "tofino",
             "--algorithm", "decision_tree", "--budget", "3", "--seed", "0",
             "--shards", "2", "--launcher", "inprocess", "--out", str(out_dir)]
        )
        assert code == 0
        assert "deployment bundle written" in capsys.readouterr().out
        assert list(out_dir.rglob("*")), "bundle directory is empty"


class TestRunnerShardFlags:
    def test_runner_rejects_bad_shards(self, capsys):
        from repro.eval.runner import main as runner_main

        assert runner_main(["--experiment", "table2", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_run_experiment_forwards_shard_kwargs(self, monkeypatch):
        from repro.eval import runner

        captured = {}

        def fake_table2(seed=0, quick=True, n_workers=1, batch_size=None,
                        shards=1, launcher=None, shard_dir=None,
                        granularity=None, max_retries=0):
            captured.update(shards=shards, launcher=launcher,
                            shard_dir=shard_dir, granularity=granularity,
                            max_retries=max_retries)
            return []

        monkeypatch.setitem(
            runner.EXPERIMENTS, "table2", (fake_table2, lambda rows: "ok")
        )
        text = runner.run_experiment(
            "table2", seed=3, quick=True, shards=4,
            launcher="subprocess", shard_dir="/tmp/q",
            granularity="shard", max_retries=2,
        )
        assert text == "ok"
        assert captured["shards"] == 4
        assert captured["launcher"] == "subprocess"
        assert captured["shard_dir"] == "/tmp/q"
        assert captured["granularity"] == "shard"
        assert captured["max_retries"] == 2

    def test_run_experiment_skips_shards_for_non_compiler_experiments(
        self, monkeypatch
    ):
        from repro.eval import runner

        captured = {}

        def fake_fig6(seed=0, n_flows=10):
            captured.update(seed=seed)
            return {}

        monkeypatch.setitem(
            runner.EXPERIMENTS, "fig6", (fake_fig6, lambda r: "ok")
        )
        assert runner.run_experiment("fig6", seed=1, quick=True, shards=4) == "ok"
        assert "shards" not in captured
