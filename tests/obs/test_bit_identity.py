"""The hard constraint: observability NEVER changes results.

The matrix crosses {serial, sharded} x {REPRO_OBS off, REPRO_OBS on}
and asserts search histories, winners, and serving counters are
bit-identical — spans and counters ride alongside the computation and
must not touch RNG state, ordering, or outputs.  The traced sharded run
additionally checks the acceptance criterion for the merged obs
payload: one ``distrib.unit`` span per planned unit, a merged metrics
snapshot that says so too, and a Chrome trace export that validates.
"""

import os

import numpy as np
import pytest

import repro
from repro.distrib import DatasetRef, ModelEntry, RunSpec, run_sharded
from repro.obs.trace import reset_tracer, to_chrome_trace, validate_chrome_trace


def make_spec():
    return RunSpec(
        target="tofino",
        models=[
            ModelEntry(
                name="tc",
                dataset=DatasetRef.for_app("tc", n_train=150, n_test=60,
                                           seed=11),
                algorithms=("decision_tree", "svm"),
            )
        ],
        budget=3,
        warmup=2,
        train_epochs=3,
        seed=0,
    )


def serial_histories(report):
    return {
        algorithm: [
            (tuple(sorted(e.config.items())), round(e.objective, 12))
            for e in result.history
        ]
        for algorithm, result in report.models["tc"].candidate_results.items()
    }


def sharded_fingerprint(out):
    best = out.report.best
    histories = {}
    for shard in out.shard_results:
        for unit in shard.units:
            key = (unit.model_index, unit.family_index, unit.start)
            histories[key] = [
                (tuple(sorted(e.config.items())), round(e.objective, 12))
                for e in unit.history
            ]
    return (best.algorithm, tuple(sorted(best.best_config.items())),
            best.objective, histories)


@pytest.fixture
def obs_off(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
    reset_tracer()
    yield
    reset_tracer()


@pytest.fixture
def obs_on(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
    reset_tracer()
    yield
    reset_tracer()


class TestSearchBitIdentity:
    @pytest.fixture(scope="class")
    def baseline(self):
        """Serial untraced run — the reference everything must match."""
        saved = os.environ.pop("REPRO_OBS", None)
        reset_tracer()
        try:
            spec = make_spec()
            report = repro.generate(
                spec.build_platform(), budget=spec.budget, warmup=spec.warmup,
                train_epochs=spec.train_epochs, seed=spec.seed,
            )
        finally:
            if saved is not None:
                os.environ["REPRO_OBS"] = saved
            reset_tracer()
        return serial_histories(report), report.best

    def test_serial_traced_matches(self, baseline, obs_on):
        spec = make_spec()
        report = repro.generate(
            spec.build_platform(), budget=spec.budget, warmup=spec.warmup,
            train_epochs=spec.train_epochs, seed=spec.seed,
        )
        ref_histories, ref_best = baseline
        assert serial_histories(report) == ref_histories
        assert report.best.best_config == ref_best.best_config
        assert report.best.objective == ref_best.objective

    def test_sharded_untraced_matches(self, baseline, obs_off):
        out = run_sharded(make_spec(), shards=2)
        algorithm, config, objective, _ = sharded_fingerprint(out)
        _, ref_best = baseline
        assert algorithm == ref_best.algorithm
        assert config == tuple(sorted(ref_best.best_config.items()))
        assert objective == ref_best.objective
        # Tracing off: the merged report carries no obs payload at all.
        assert out.obs.get("spans", []) == []

    def test_sharded_traced_matches_and_counts_spans(self, baseline, obs_on):
        out = run_sharded(make_spec(), shards=2)
        algorithm, config, objective, _ = sharded_fingerprint(out)
        _, ref_best = baseline
        assert algorithm == ref_best.algorithm
        assert config == tuple(sorted(ref_best.best_config.items()))
        assert objective == ref_best.objective

        planned_units = sum(len(s.units) for s in out.shard_results)
        assert planned_units > 0
        unit_spans = [e for e in out.obs["spans"]
                      if e["name"] == "distrib.unit"]
        # Acceptance criterion: one unit span per planned unit...
        assert len(unit_spans) == planned_units
        # ...and the merged metrics snapshot agrees.
        samples = out.obs["metrics"]["repro_spans_total"]["samples"]
        assert samples['[["name", "distrib.unit"]]'] == planned_units

        # The fleet-wide timeline spans all shards and nests sanely.
        timeline = out.obs["timeline"]
        assert {lane["shard"] for lane in timeline["shards"]} == {0, 1}
        assert timeline["critical_path_s"] <= timeline["wall_s"] + 1e-6

        # The pooled spans export to a valid Chrome trace.
        doc = to_chrome_trace(out.obs["spans"])
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) == len(out.obs["spans"])


class TestParallelEvaluatorSpans:
    def test_traced_run_identical_and_emits_eval_spans(self, obs_on):
        from repro.bayesopt.parallel import ParallelEvaluator
        from repro.bayesopt.space import DesignSpace, Integer
        from repro.obs.trace import get_tracer

        def quadratic(config):
            return -(config["x"] ** 2 + config["y"] ** 2)

        space = DesignSpace([Integer("x", -10, 10), Integer("y", -10, 10)])
        traced = ParallelEvaluator(space, quadratic, n_workers=2,
                                   warmup=3, seed=4).run(10)
        spans = [e for e in get_tracer().drain() if e["name"] == "bo.eval"]
        reset_tracer()

        os.environ.pop("REPRO_OBS", None)
        untraced = ParallelEvaluator(space, quadratic, n_workers=2,
                                     warmup=3, seed=4).run(10)
        # Every real black-box call got a span; histories are identical.
        assert len(spans) > 0
        assert [(e.config, e.objective) for e in traced.history] == \
               [(e.config, e.objective) for e in untraced.history]


class TestServingBitIdentity:
    def _run(self, pipeline, packets, labels):
        from repro.runtime import FlowmarkerTracker
        from repro.serving import AsyncStreamEngine

        engine = AsyncStreamEngine(
            pipeline, FlowmarkerTracker(max_conversations=512),
            batch_size=16, drop_policy="block",
        )
        out = engine.process(packets, labels)
        return np.asarray(out), engine.stats

    def test_counters_and_outputs_identical(self, bd_pipeline_and_stream,
                                            monkeypatch, tmp_path):
        pipeline, packets, labels = bd_pipeline_and_stream
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        monkeypatch.delenv("REPRO_OBS", raising=False)
        reset_tracer()
        out_off, stats_off = self._run(pipeline, packets, labels)
        monkeypatch.setenv("REPRO_OBS", "1")
        reset_tracer()
        out_on, stats_on = self._run(pipeline, packets, labels)
        reset_tracer()
        assert np.array_equal(out_off, out_on)
        assert stats_off.counters() == stats_on.counters()
