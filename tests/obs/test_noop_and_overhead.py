"""Disabled mode is free: shared singletons, no sink, no packet-path cost.

``REPRO_OBS`` off is the default, so these tests guard the common case:
every instrumented call site must collapse to a no-op singleton, write
no files, and leave the process registry untouched.  The overhead
micro-test bounds the cost of a disabled span loosely enough to be
immune to CI noise while still catching an accidental re-enable (a real
span stamps two clocks and appends a dict — orders of magnitude more
than the shared null context manager).
"""

import time

import pytest

from repro.obs import flush_obs
from repro.obs.registry import NULL_REGISTRY, REGISTRY, get_registry
from repro.obs.trace import NULL_TRACER, get_tracer, reset_tracer


@pytest.fixture
def obs_off(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
    reset_tracer()
    yield tmp_path / "obs"
    reset_tracer()


class TestDisabledSingletons:
    def test_accessors_return_shared_nulls(self, obs_off):
        assert get_registry() is NULL_REGISTRY
        assert get_tracer() is NULL_TRACER

    def test_null_span_is_one_shared_object(self, obs_off):
        tracer = get_tracer()
        span = tracer.span("serving.infer")
        # Every call hands back the same context manager: no per-call
        # garbage, no buffered events, reentrant nesting.
        assert tracer.span("distrib.unit") is span
        with span:
            with tracer.span("inner"):
                pass
        assert tracer.events == []
        assert tracer.drain() == []

    def test_null_registry_instruments_are_shared(self, obs_off):
        registry = get_registry()
        counter = registry.counter("a_total", labels=("k",))
        assert registry.histogram("b_seconds") is counter
        assert counter.labels(k="v") is counter
        counter.inc()
        counter.observe(0.5)
        assert registry.snapshot() == {}

    def test_flush_writes_nothing_when_disabled(self, obs_off):
        get_registry().counter("ignored_total").inc()
        assert flush_obs() is None
        assert not obs_off.exists()

    def test_disabled_run_leaves_process_registry_untouched(self, obs_off):
        before = set(REGISTRY.snapshot())
        with get_tracer().span("distrib.unit", shard=0):
            get_registry().counter("repro_spans_total",
                                   labels=("name",)).labels(
                name="distrib.unit").inc()
        assert set(REGISTRY.snapshot()) == before


class TestOverhead:
    def test_disabled_span_overhead_bounded(self, obs_off):
        tracer = get_tracer()
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            with tracer.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        # ~5 µs/span is an order of magnitude above what the shared
        # null context manager costs, even on a loaded CI box.
        assert elapsed < n * 5e-6, f"no-op span too slow: {elapsed:.3f}s"
