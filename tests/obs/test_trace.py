"""Span tracer: events, JSONL sink, Chrome export, span counters."""

import json
import os

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    load_events,
    to_chrome_trace,
    validate_chrome_trace,
)


class TestSpans:
    def test_span_records_name_args_duration(self):
        tracer = Tracer()
        with tracer.span("compile.family", model="ad", family=2):
            pass
        (event,) = tracer.events
        assert event["name"] == "compile.family"
        assert event["args"] == {"model": "ad", "family": 2}
        assert event["dur"] >= 0.0
        assert event["pid"] == os.getpid()

    def test_exception_annotated_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bo.eval"):
                raise ValueError("boom")
        (event,) = tracer.events
        assert event["args"]["error"] == "ValueError"

    def test_nested_spans_both_recorded(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [event["name"] for event in tracer.events]
        # Inner exits first, so it lands first.
        assert names == ["inner", "outer"]

    def test_drain_returns_and_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [e["name"] for e in drained] == ["a"]
        assert tracer.events == []

    def test_span_counter_rides_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(counter_registry=registry)
        for _ in range(3):
            with tracer.span("distrib.unit"):
                pass
        samples = registry.snapshot()["repro_spans_total"]["samples"]
        assert samples['[["name", "distrib.unit"]]'] == 3

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", k=1):
            pass
        assert NULL_TRACER.events == []
        assert NULL_TRACER.drain() == []


class TestSink:
    def test_jsonl_sink_lines_parse(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink_path=str(sink))
        with tracer.span("serving.infer", rows=8):
            pass
        with tracer.span("serving.infer", rows=4):
            pass
        tracer.flush()
        tracer.close()
        lines = sink.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            event = json.loads(line)
            assert event["name"] == "serving.infer"
        assert [e["args"]["rows"] for e in load_events(str(sink))] == [8, 4]

    def test_two_tracers_interleave_whole_lines(self, tmp_path):
        # O_APPEND single-write lines: concurrent writers can interleave
        # only at line granularity, never mid-record.
        sink = tmp_path / "trace.jsonl"
        a = Tracer(sink_path=str(sink))
        b = Tracer(sink_path=str(sink))
        for _ in range(20):
            with a.span("from.a"):
                pass
            with b.span("from.b"):
                pass
        a.close()
        b.close()
        events = load_events(str(sink))
        assert len(events) == 40
        assert {event["name"] for event in events} == {"from.a", "from.b"}


class TestChromeExport:
    def test_export_schema(self):
        tracer = Tracer()
        with tracer.span("distrib.unit", shard=0):
            with tracer.span("bo.eval"):
                pass
        doc = to_chrome_trace(tracer.drain())
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid"}
        # cat is the first dotted component; events sorted by ts.
        assert {e["cat"] for e in events} == {"distrib", "bo"}
        assert events[0]["ts"] <= events[1]["ts"]

    def test_validator_flags_problems(self):
        doc = to_chrome_trace([])
        assert validate_chrome_trace(doc) == []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        assert validate_chrome_trace({"nope": 1})
        bad = {"traceEvents": [{"name": "a", "cat": "a", "ph": "Q",
                                "ts": 0, "dur": 1, "pid": 1, "tid": 1}]}
        assert validate_chrome_trace(bad)
