"""Prometheus text exposition: rendering, escaping, strict parsing."""

import pytest

from repro.errors import HomunculusError
from repro.obs.registry import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestRender:
    def test_help_and_type_headers(self, registry):
        registry.counter("jobs_total", "jobs processed").inc()
        text = render_prometheus(registry.snapshot())
        assert "# HELP jobs_total jobs processed" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 1" in text

    def test_histogram_exposition(self, registry):
        hist = registry.histogram("lat_seconds", "latency")
        hist.observe(0.001)
        hist.observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_sum 0.501" in text
        # Cumulative bucket counts are monotone in le order.
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_seconds_bucket")
        ]
        assert counts == sorted(counts)

    def test_extra_samples_appended(self, registry):
        text = render_prometheus(
            registry.snapshot(),
            extra_samples=[
                ("pull_total", "counter", "pull-model sample",
                 (("w", "w0"),), 4.0),
            ],
        )
        assert parse_prometheus(text)[("pull_total", (("w", "w0"),))] == 4.0


class TestRoundTrip:
    def test_label_escaping_round_trips(self, registry):
        hostile = 'quote " backslash \\ newline \n raw \\n end'
        registry.counter("c_total", "help", labels=("k",)).labels(
            k=hostile).inc(3)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed == {("c_total", (("k", hostile),)): 3.0}

    def test_multiple_labels_sorted(self, registry):
        registry.gauge("g", "help", labels=("b", "a")).labels(
            b="2", a="1").set(9)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed == {("g", (("a", "1"), ("b", "2"))): 9.0}

    def test_special_float_values(self):
        text = 'x_total 1e+20\ny +Inf\nz -Inf\n'
        parsed = parse_prometheus(text)
        assert parsed[("x_total", ())] == 1e20
        assert parsed[("y", ())] == float("inf")
        assert parsed[("z", ())] == float("-inf")


class TestStrictParse:
    @pytest.mark.parametrize("line", [
        "no_value_here",
        "bad{unterminated 1",
        'bad{k="v&} 1',
        "name 12abc",
        "{} 5",
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(HomunculusError):
            parse_prometheus(line)

    def test_duplicate_sample_raises(self):
        with pytest.raises(HomunculusError):
            parse_prometheus("a_total 1\na_total 2\n")

    def test_comments_and_blanks_skipped(self):
        assert parse_prometheus("# HELP a b\n\n   \n# TYPE a counter\n") == {}
