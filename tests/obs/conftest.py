"""Fixtures for the observability suite: a small trained serving workload."""

import pytest

from repro.backends.taurus import TaurusBackend
from repro.datasets import load_botnet
from repro.datasets.botnet import flow_label, generate_botnet_flows
from repro.eval.baselines import train_baseline_dnn


@pytest.fixture(scope="session")
def bd_pipeline_and_stream():
    dataset = load_botnet(n_train_flows=60, n_test_flows=2, seed=13,
                          per_packet_test=False)
    net, scaler = train_baseline_dnn("bd", dataset, seed=0)
    pipeline = TaurusBackend().compile_model(net, scaler=scaler, name="bd")
    flows = generate_botnet_flows(40, seed=7)
    tagged = sorted(
        ((p.timestamp, p, flow_label(f)) for f in flows for p in f),
        key=lambda item: item[0],
    )
    packets = [item[1] for item in tagged]
    labels = [item[2] for item in tagged]
    return pipeline, packets, labels
