"""MetricsRegistry: instruments, labels, snapshots, merging, no-op mode."""

import pytest

from repro.errors import HomunculusError
from repro.obs.registry import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    enabled,
    merge_snapshots,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert registry.snapshot()["c_total"]["samples"]["[]"] == 3.5

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(HomunculusError):
            registry.counter("c_total").inc(-1)

    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert registry.snapshot()["g"]["samples"]["[]"] == 12

    def test_histogram_buckets_cumulative(self):
        hist = Histogram(low=1e-3, high=10.0, bins_per_decade=2)
        for value in (0.0001, 0.01, 0.02, 5.0, 1000.0):
            hist.observe(value)
        buckets = hist.buckets()
        counts = [count for _, count in buckets]
        # Cumulative: monotone non-decreasing, +Inf bucket sees all.
        assert counts == sorted(counts)
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 5
        # The underflow (0.0001 < low) and overflow (1000 > high)
        # observations are still counted.
        assert hist.count == 5
        assert hist.sum == pytest.approx(0.0001 + 0.01 + 0.02 + 5.0 + 1000.0)

    def test_get_or_create_returns_same_family(self, registry):
        a = registry.counter("x_total", "help", labels=("k",))
        b = registry.counter("x_total", "help", labels=("k",))
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("m", "help")
        with pytest.raises(HomunculusError):
            registry.gauge("m", "help")

    def test_labeled_series_are_independent(self, registry):
        family = registry.counter("hits_total", "help", labels=("route",))
        family.labels(route="a").inc()
        family.labels(route="a").inc()
        family.labels(route="b").inc()
        samples = registry.snapshot()["hits_total"]["samples"]
        assert samples['[["route", "a"]]'] == 2
        assert samples['[["route", "b"]]'] == 1


class TestSnapshotMerge:
    def test_counters_and_histograms_add(self, registry):
        other = MetricsRegistry()
        for reg, n in ((registry, 2), (other, 3)):
            reg.counter("c_total").inc(n)
            hist = reg.histogram("h_seconds")
            for _ in range(n):
                hist.observe(0.5)
        merged = merge_snapshots([registry.snapshot(), other.snapshot()])
        assert merged["c_total"]["samples"]["[]"] == 5
        hist_sample = merged["h_seconds"]["samples"]["[]"]
        assert hist_sample["count"] == 5
        assert hist_sample["sum"] == pytest.approx(2.5)

    def test_gauges_last_writer_wins(self, registry):
        other = MetricsRegistry()
        registry.gauge("g").set(1)
        other.gauge("g").set(7)
        merged = merge_snapshots([registry.snapshot(), other.snapshot()])
        assert merged["g"]["samples"]["[]"] == 7

    def test_disjoint_families_union(self, registry):
        other = MetricsRegistry()
        registry.counter("only_a_total").inc()
        other.counter("only_b_total").inc()
        merged = merge_snapshots([registry.snapshot(), other.snapshot()])
        assert set(merged) == {"only_a_total", "only_b_total"}

    def test_kind_conflict_raises(self, registry):
        other = MetricsRegistry()
        registry.counter("m").inc()
        other.gauge("m").set(1)
        with pytest.raises(HomunculusError):
            merge_snapshots([registry.snapshot(), other.snapshot()])

    def test_clear_empties(self, registry):
        registry.counter("c_total").inc()
        registry.clear()
        assert registry.snapshot() == {}


class TestNoOpMode:
    def test_disabled_by_default_values(self, monkeypatch):
        for off in ("", "0", "false", "no", "off", "False", "OFF"):
            monkeypatch.setenv("REPRO_OBS", off)
            assert not enabled()
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert not enabled()
        for on in ("1", "true", "yes", "on"):
            monkeypatch.setenv("REPRO_OBS", on)
            assert enabled()

    def test_null_registry_is_allocation_free_singletons(self):
        counter = NULL_REGISTRY.counter("c_total", labels=("k",))
        # Same shared instrument object every time: no per-call garbage.
        assert counter is NULL_REGISTRY.counter("other", labels=("x",))
        assert counter.labels(k="v") is counter
        counter.inc()
        counter.observe(1.0)
        counter.set(2.0)
        counter.dec()
        assert NULL_REGISTRY.snapshot() == {}
