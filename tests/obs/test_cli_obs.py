"""``cli obs`` verbs, ``trace2chrome``, and flush-on-signal teardown."""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.cli import main, obs_main
from repro.obs.trace import Tracer

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")


@pytest.fixture
def recorded_dir(tmp_path, monkeypatch):
    """An obs dir holding a trace sink and a metrics snapshot."""
    directory = tmp_path / "obs"
    directory.mkdir()
    tracer = Tracer(sink_path=str(directory / "trace.jsonl"))
    with tracer.span("distrib.unit", shard=0):
        with tracer.span("bo.eval"):
            pass
    with tracer.span("serving.infer", rows=16):
        pass
    tracer.close()
    (directory / "metrics.json").write_text(json.dumps({
        "repro_spans_total": {
            "kind": "counter", "help": "spans", "labels": ["name"],
            "samples": {'[["name", "distrib.unit"]]': 1.0},
        },
        "lat_seconds": {
            "kind": "histogram", "help": "", "labels": [],
            "samples": {"[]": {"buckets": [["+Inf", 2]],
                               "sum": 0.5, "count": 2}},
        },
    }))
    monkeypatch.setenv("REPRO_OBS_DIR", str(directory))
    return directory


class TestVerbs:
    def test_summary(self, recorded_dir, capsys):
        assert obs_main(["summary", "--dir", str(recorded_dir)]) == 0
        out = capsys.readouterr().out
        assert "repro_spans_total{name=distrib.unit} = 1.0" in out
        assert "count=2 sum=0.5" in out
        assert "3 events" in out
        assert "distrib.unit x 1" in out

    def test_summary_empty_dir_fails(self, tmp_path, capsys):
        assert obs_main(["summary", "--dir", str(tmp_path / "nope")]) == 1
        assert "REPRO_OBS=1" in capsys.readouterr().err

    def test_tail(self, recorded_dir, capsys):
        assert obs_main(["tail", "--dir", str(recorded_dir), "-n", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert "serving.infer" in lines[-1] and "rows=16" in lines[-1]

    def test_tail_without_trace_fails(self, tmp_path, capsys):
        assert obs_main(["tail", "--dir", str(tmp_path)]) == 1
        assert "no trace" in capsys.readouterr().err

    def test_export_writes_valid_chrome_trace(self, recorded_dir, capsys):
        out_path = recorded_dir / "trace.json"
        assert obs_main(["export", "--dir", str(recorded_dir)]) == 0
        doc = json.loads(out_path.read_text())
        assert len(doc["traceEvents"]) == 3
        assert all(event["ph"] == "X" for event in doc["traceEvents"])

    def test_export_missing_input_fails(self, tmp_path, capsys):
        code = obs_main(["export", "--dir", str(tmp_path),
                         "--input", str(tmp_path / "missing.jsonl")])
        assert code == 1

    def test_unknown_verb_rejected(self, capsys):
        assert obs_main(["frobnicate"]) == 2
        assert obs_main([]) == 2

    def test_main_dispatches_obs(self, recorded_dir, capsys):
        assert main(["obs", "summary", "--dir", str(recorded_dir)]) == 0
        assert "distrib.unit" in capsys.readouterr().out


class TestTrace2Chrome:
    def test_export_then_check_round_trip(self, recorded_dir, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC)
        out = tmp_path / "chrome.json"
        tool = os.path.join(REPO, "tools", "trace2chrome.py")
        exported = subprocess.run(
            [sys.executable, tool, str(recorded_dir / "trace.jsonl"),
             "-o", str(out)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert exported.returncode == 0, exported.stderr
        checked = subprocess.run(
            [sys.executable, tool, "--check", str(out)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert checked.returncode == 0, checked.stderr
        assert "ok (3 events)" in checked.stdout


class TestFlushOnSignal:
    def test_sigterm_flushes_obs_artifacts(self, tmp_path):
        """A served process killed with SIGTERM leaves its snapshot behind."""
        obs_dir = tmp_path / "obs"
        script = textwrap.dedent("""
            import time

            from repro.cli import _install_obs_flush
            from repro.obs import get_registry, get_tracer

            _install_obs_flush()
            get_registry().counter("repro_child_total", "help").inc(3)
            with get_tracer().span("child.work"):
                pass
            print("READY", flush=True)
            time.sleep(60)
        """)
        env = dict(os.environ, PYTHONPATH=SRC, REPRO_OBS="1",
                   REPRO_OBS_DIR=str(obs_dir))
        child = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            assert child.stdout.readline().strip() == "READY"
            child.send_signal(signal.SIGTERM)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        # SystemExit(128 + SIGTERM) preserves the conventional exit code.
        assert child.returncode == 143, child.stderr.read()
        snapshot = json.loads((obs_dir / "metrics.json").read_text())
        assert snapshot["repro_child_total"]["samples"]["[]"] == 3
        sink = (obs_dir / "trace.jsonl").read_text().splitlines()
        assert any(json.loads(line)["name"] == "child.work" for line in sink)
