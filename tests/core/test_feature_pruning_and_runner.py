"""Tests for IIsy feature pruning in the evaluator and the CLI runner."""

import pytest

from repro.alchemy import DataLoader, Model
from repro.backends.tofino import TofinoBackend
from repro.core.evaluator import ModelEvaluator
from repro.eval.runner import EXPERIMENTS, main, run_experiment


def make_spec(name, dataset, metric="f1", algorithms=("svm",)):
    @DataLoader
    def loader():
        return dataset

    return Model(
        {
            "optimization_metric": [metric],
            "algorithm": list(algorithms),
            "name": name,
            "data_loader": loader,
        }
    )


class TestSvmFeaturePruning:
    """§4: 'remove less impactful features until the SVM model fits'."""

    def test_dataset_pruned_to_mat_budget(self, tc_dataset):
        spec = make_spec("tc", tc_dataset)
        constraints = {"performance": {}, "resources": {"mats": 5}}
        evaluator = ModelEvaluator(
            spec, tc_dataset, "svm", TofinoBackend(), constraints, seed=0
        )
        # 7 features would need 8 MATs; with 5 available keep 4 features.
        assert evaluator.dataset.n_features == 4

    def test_pruned_pipeline_fits_and_scores(self, tc_dataset):
        spec = make_spec("tc", tc_dataset)
        constraints = {"performance": {}, "resources": {"mats": 5}}
        evaluator = ModelEvaluator(
            spec, tc_dataset, "svm", TofinoBackend(), constraints, seed=0,
        )
        out = evaluator.evaluate({"c_log10": 0.0, "lr_log10": -1.0, "epochs": 20})
        assert out.feasible
        assert out.metrics["resource_mats"] <= 5
        assert out.objective > 0.2  # still learns something on 4 features

    def test_no_pruning_when_budget_sufficient(self, tc_dataset):
        spec = make_spec("tc", tc_dataset)
        constraints = {"performance": {}, "resources": {"mats": 16}}
        evaluator = ModelEvaluator(
            spec, tc_dataset, "svm", TofinoBackend(), constraints, seed=0
        )
        assert evaluator.dataset.n_features == tc_dataset.n_features

    def test_other_algorithms_untouched(self, tc_dataset):
        spec = make_spec("tc", tc_dataset, metric="v_measure", algorithms=("kmeans",))
        constraints = {"performance": {}, "resources": {"mats": 3}}
        evaluator = ModelEvaluator(
            spec, tc_dataset, "kmeans", TofinoBackend(), constraints, seed=0
        )
        assert evaluator.dataset.n_features == tc_dataset.n_features


class TestRunner:
    def test_registry_covers_all_experiments(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3", "table4", "table5",
            "fig4", "fig6", "fig7", "reaction_time",
        }

    def test_run_fig6_text(self):
        text = run_experiment("fig6", seed=0, quick=True)
        assert "packet-length histogram" in text

    def test_main_single_experiment(self, tmp_path, capsys):
        code = main(["--experiment", "fig6", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig6.txt").exists()
        assert "fig6" in capsys.readouterr().out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "table99"])

    def test_main_rejects_bad_workers(self, capsys):
        assert main(["--experiment", "fig6", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_main_rejects_bad_batch_size(self, capsys):
        assert main(["--experiment", "fig6", "--batch-size", "0"]) == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_workers_flag_accepted_on_non_compiler_experiment(self, capsys):
        # fig6 does not drive the compiler; the flag must be harmless there.
        code = main(["--experiment", "fig6", "--workers", "2"])
        assert code == 0
        assert "fig6" in capsys.readouterr().out

    def test_run_experiment_parallel_matches_serial(self):
        serial = run_experiment("fig7", seed=0, quick=True)
        parallel = run_experiment("fig7", seed=0, quick=True, n_workers=2)
        assert parallel == serial  # identical report text under parallelism
