"""Tests for report export/import."""

import json
import os

import pytest

import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.core.export import export_report, load_report_dict, report_to_dict
from repro.datasets import load_nslkdd
from repro.errors import HomunculusError


@pytest.fixture(scope="module")
def report():
    dataset = load_nslkdd(n_train=300, n_test=120, seed=7)

    @DataLoader
    def loader():
        return dataset

    spec = Model({"optimization_metric": ["f1"], "algorithm": ["dnn"],
                  "name": "ad", "data_loader": loader})
    platform = Platforms.Taurus().constrain(resources={"rows": 16, "cols": 16})
    platform.schedule(spec)
    return repro.generate(platform, budget=3, warmup=2, train_epochs=6, seed=0)


class TestReportToDict:
    def test_structure(self, report):
        doc = report_to_dict(report)
        assert doc["target"] == "taurus"
        assert "ad" in doc["models"]
        model = doc["models"]["ad"]
        assert model["algorithm"] == "dnn"
        assert 0.0 <= model["objective"] <= 1.0
        assert model["iterations"] == 3

    def test_json_serializable(self, report):
        json.dumps(report_to_dict(report))  # must not raise


class TestExport:
    def test_bundle_layout(self, report, tmp_path):
        path = export_report(report, str(tmp_path))
        assert os.path.exists(path)
        model_dir = tmp_path / "ad"
        sources = list(model_dir.iterdir())
        assert len(sources) == 1
        assert sources[0].suffix == ".scala"
        assert "@spatial" in sources[0].read_text()

    def test_round_trip(self, report, tmp_path):
        path = export_report(report, str(tmp_path))
        loaded = load_report_dict(path)
        assert loaded == report_to_dict(report)

    def test_export_rejects_non_report(self, tmp_path):
        with pytest.raises(HomunculusError):
            export_report({"not": "a report"}, str(tmp_path))

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(HomunculusError):
            load_report_dict(str(tmp_path / "nope.json"))

    def test_load_malformed_raises(self, tmp_path):
        bad = tmp_path / "report.json"
        bad.write_text("{broken")
        with pytest.raises(HomunculusError):
            load_report_dict(str(bad))
