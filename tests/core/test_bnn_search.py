"""Tests for BNN as a first-class searchable algorithm family."""

import pytest

import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.backends.fpga import FpgaBackend
from repro.backends.taurus import TaurusBackend
from repro.core.candidates import select_candidates
from repro.core.designspace_builder import build_design_space
from repro.datasets import load_nslkdd


@pytest.fixture(scope="module")
def small_ad():
    return load_nslkdd(n_train=400, n_test=150, seed=7)


def make_spec(dataset, algorithms):
    @DataLoader
    def loader():
        return dataset

    return Model(
        {
            "optimization_metric": ["f1"],
            "algorithm": list(algorithms),
            "name": "ad",
            "data_loader": loader,
        }
    )


class TestBnnCandidates:
    def test_bnn_accepted_on_taurus(self, small_ad):
        spec = make_spec(small_ad, ("bnn",))
        out = select_candidates(
            spec, small_ad, TaurusBackend(), {"cus": 256, "mus": 256}
        )
        assert out == ["bnn"]

    def test_auto_mode_includes_bnn(self, small_ad):
        spec = make_spec(small_ad, ())
        out = select_candidates(
            spec, small_ad, TaurusBackend(), {"cus": 256, "mus": 256}
        )
        assert "bnn" in out and "dnn" in out

    def test_bnn_rejected_on_tofino(self, small_ad):
        from repro.backends.tofino import TofinoBackend

        spec = make_spec(small_ad, ("bnn", "svm"))
        out = select_candidates(spec, small_ad, TofinoBackend(), {"mats": 16})
        assert out == ["svm"]

    def test_bnn_space_wider_than_dnn(self, small_ad):
        limits = {"cus": 256, "mus": 256}
        dnn_space = build_design_space("dnn", small_ad, TaurusBackend(), limits)
        bnn_space = build_design_space("bnn", small_ad, TaurusBackend(), limits)
        assert bnn_space["width"].high > dnn_space["width"].high


class TestBnnGenerate:
    def test_generate_bnn_on_taurus(self, small_ad):
        platform = Platforms.Taurus().constrain(resources={"rows": 16, "cols": 16})
        platform.schedule(make_spec(small_ad, ("bnn",)))
        report = repro.generate(platform, budget=4, warmup=2, train_epochs=10, seed=0)
        best = report.best
        assert best.algorithm == "bnn"
        assert best.objective > 0.5
        assert "XNOR-popcount" in next(iter(best.sources.values()))

    def test_fpga_bnn_cheaper_than_same_dnn(self, small_ad):
        from repro.ml.bnn import BinarizedNetwork
        from repro.ml import NeuralNetwork, StandardScaler

        scaler = StandardScaler().fit(small_ad.train_x)
        bnn = BinarizedNetwork([7, 16, 1], seed=0)
        bnn.fit(scaler.transform(small_ad.train_x), small_ad.train_y, epochs=3)
        dnn = NeuralNetwork([7, 16, 1], seed=0)
        dnn.fit(scaler.transform(small_ad.train_x),
                small_ad.train_y.astype(float), epochs=3)
        fpga = FpgaBackend()
        bnn_pipe = fpga.compile_model(bnn, scaler=scaler, name="b")
        dnn_pipe = fpga.compile_model(dnn, scaler=scaler, name="d")
        assert bnn_pipe.resources["lut_pct"] < dnn_pipe.resources["lut_pct"]
        assert bnn_pipe.metadata["power_watts"] < dnn_pipe.metadata["power_watts"]
