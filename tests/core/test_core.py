"""Tests for the optimization core: candidates, design spaces, evaluator,
fusion, and reports."""

import numpy as np
import pytest

from repro.alchemy import DataLoader, Model
from repro.backends.taurus import TaurusBackend, TaurusGrid
from repro.backends.tofino import TofinoBackend
from repro.bayesopt.results import Evaluation
from repro.core.candidates import minimum_footprint_fits, select_candidates
from repro.core.designspace_builder import (
    MAX_WIDTH,
    build_design_space,
    dnn_topology,
    dnn_width_bound,
)
from repro.core.evaluator import ModelEvaluator
from repro.core.fusion import fuse_datasets, shared_features, should_fuse
from repro.core.reports import CompileReport, ModelReport
from repro.errors import DatasetError, DesignSpaceError, InfeasibleError


def make_model(name, dataset, metric="f1", algorithms=("dnn",)):
    @DataLoader
    def loader():
        return dataset

    return Model(
        {
            "optimization_metric": [metric],
            "algorithm": list(algorithms),
            "name": name,
            "data_loader": loader,
        }
    )


class TestCandidates:
    def test_dnn_on_taurus(self, ad_dataset):
        model = make_model("ad", ad_dataset)
        backend = TaurusBackend()
        out = select_candidates(model, ad_dataset, backend, {"cus": 256, "mus": 256})
        assert out == ["dnn"]

    def test_unsupported_algorithm_filtered(self, ad_dataset):
        model = make_model("ad", ad_dataset, algorithms=("dnn", "kmeans"))
        backend = TaurusBackend()
        out = select_candidates(model, ad_dataset, backend, {"cus": 256, "mus": 256})
        assert "kmeans" not in out

    def test_kmeans_needs_v_measure(self, tc_dataset):
        backend = TofinoBackend()
        model = make_model("tc", tc_dataset, metric="f1", algorithms=("kmeans",))
        with pytest.raises(InfeasibleError):
            select_candidates(model, tc_dataset, backend, {"mats": 8})

    def test_v_measure_excludes_supervised(self, tc_dataset):
        backend = TofinoBackend()
        model = make_model(
            "tc", tc_dataset, metric="v_measure", algorithms=("kmeans", "svm")
        )
        out = select_candidates(model, tc_dataset, backend, {"mats": 8})
        assert out == ["kmeans"]

    def test_nothing_fits_raises(self, ad_dataset):
        model = make_model("ad", ad_dataset)
        backend = TaurusBackend()
        with pytest.raises(InfeasibleError):
            select_candidates(model, ad_dataset, backend, {"cus": 1, "mus": 1})

    def test_minimum_footprint_tofino(self, tc_dataset):
        backend = TofinoBackend()
        assert minimum_footprint_fits("svm", tc_dataset, backend, {"mats": 2})
        assert not minimum_footprint_fits("svm", tc_dataset, backend, {"mats": 1})
        assert minimum_footprint_fits("kmeans", tc_dataset, backend, {"mats": 1})

    def test_auto_algorithm_selection(self, tc_dataset):
        model = make_model("tc", tc_dataset, algorithms=())
        backend = TofinoBackend()
        out = select_candidates(model, tc_dataset, backend, {"mats": 16})
        assert set(out) == {"svm", "decision_tree"}


class TestDesignSpaceBuilder:
    def test_dnn_space_parameters(self, ad_dataset):
        space = build_design_space("dnn", ad_dataset, TaurusBackend(), {"cus": 256})
        assert set(space.names) == {
            "n_layers", "width", "taper", "lr_log10", "batch_size", "optimizer",
        }

    def test_width_bound_shrinks_with_cus(self, ad_dataset):
        wide = dnn_width_bound(7, 256)
        narrow = dnn_width_bound(7, 32)
        assert narrow < wide <= MAX_WIDTH

    def test_kmeans_space_capped_by_mats(self, tc_dataset):
        space = build_design_space("kmeans", tc_dataset, TofinoBackend(), {"mats": 3})
        assert space["n_clusters"].high == 3

    def test_tree_space_capped_by_mats(self, tc_dataset):
        space = build_design_space(
            "decision_tree", tc_dataset, TofinoBackend(), {"mats": 5}
        )
        assert space["max_depth"].high == 4

    def test_unknown_algorithm_raises(self, ad_dataset):
        with pytest.raises(DesignSpaceError):
            build_design_space("gbm", ad_dataset, TaurusBackend(), {})

    def test_dnn_topology_materialization(self):
        config = {"n_layers": 3, "width": 16, "taper": 0.5}
        dims = dnn_topology(config, 7, 1)
        assert dims == [7, 16, 8, 4, 1]

    def test_dnn_topology_min_width_two(self):
        config = {"n_layers": 4, "width": 4, "taper": 0.5}
        dims = dnn_topology(config, 7, 1)
        assert min(dims[1:-1]) >= 2


class TestEvaluator:
    @pytest.fixture
    def evaluator(self, ad_dataset):
        model = make_model("ad", ad_dataset)
        backend = TaurusBackend(TaurusGrid(16, 16))
        constraints = {
            "performance": {"throughput": 1, "latency": 500},
            "resources": {"cus": 256, "mus": 256},
        }
        return ModelEvaluator(
            model, ad_dataset, "dnn", backend, constraints, seed=0, train_epochs=10
        )

    def _config(self, **overrides):
        config = {
            "n_layers": 2, "width": 10, "taper": 0.8, "lr_log10": -2.0,
            "batch_size": 32, "optimizer": "adam",
        }
        config.update(overrides)
        return config

    def test_feasible_evaluation(self, evaluator):
        out = evaluator.evaluate(self._config())
        assert isinstance(out, Evaluation)
        assert out.feasible
        assert 0.0 <= out.objective <= 1.0
        assert out.metrics["resource_cus"] > 0

    def test_oversized_config_infeasible(self, evaluator):
        out = evaluator.evaluate(self._config(n_layers=10, width=48, taper=1.25))
        assert not out.feasible
        assert "violations" in out.metrics

    def test_deterministic(self, evaluator):
        a = evaluator.evaluate(self._config())
        b = evaluator.evaluate(self._config())
        assert a.objective == b.objective

    def test_rebuild_reproduces_objective(self, evaluator, ad_dataset):
        config = self._config()
        out = evaluator.evaluate(config)
        _, pipeline, _ = evaluator.rebuild(config)
        from repro.ml.metrics import f1_score

        rebuilt = f1_score(ad_dataset.test_y, pipeline.predict(ad_dataset.test_x))
        assert rebuilt == pytest.approx(out.objective)

    def test_hw_objective_reported_with_float(self, evaluator):
        out = evaluator.evaluate(self._config())
        assert "float_objective" in out.metrics

    def test_kmeans_evaluator(self, tc_dataset):
        model = make_model("tc", tc_dataset, metric="v_measure", algorithms=("kmeans",))
        backend = TofinoBackend()
        constraints = {"performance": {}, "resources": {"mats": 8}}
        evaluator = ModelEvaluator(model, tc_dataset, "kmeans", backend, constraints, seed=0)
        out = evaluator.evaluate({"n_clusters": 5, "n_init": 2})
        assert out.feasible
        assert out.metrics["resource_mats"] == 5


class TestFusion:
    def test_shared_features_by_name(self, ad_dataset):
        a, b = ad_dataset.split_half(seed=0)
        assert shared_features(a, b) == list(ad_dataset.feature_names)

    def test_should_fuse_threshold(self, ad_dataset):
        a, b = ad_dataset.split_half(seed=0)
        assert should_fuse(a, b)
        assert not should_fuse(a.subset_features([0, 1]), b.subset_features([2, 3]))

    def test_fused_dataset_sizes(self, ad_dataset):
        a, b = ad_dataset.split_half(seed=0)
        fused = fuse_datasets(a, b)
        assert fused.n_train == a.n_train + b.n_train
        assert fused.n_test == a.n_test + b.n_test

    def test_label_space_mismatch_raises(self, ad_dataset, tc_dataset):
        with pytest.raises(DatasetError):
            fuse_datasets(ad_dataset, tc_dataset)

    def test_positional_fusion_unnamed(self):
        from repro.datasets import Dataset

        def unnamed(seed):
            rng = np.random.default_rng(seed)
            return Dataset(
                train_x=rng.normal(size=(10, 3)), train_y=np.zeros(10),
                test_x=rng.normal(size=(4, 3)), test_y=np.array([0, 0, 1, 1]),
            )

        fused = fuse_datasets(unnamed(0), unnamed(1))
        assert fused.n_features == 3


class TestReports:
    def test_summary_row(self):
        from repro.backends.base import PerformanceEstimate

        report = ModelReport(
            name="ad", algorithm="dnn", best_config={}, objective=0.9,
            float_objective=0.91, metric="f1", feasible=True,
            resources={"cus": 10, "mus": 20},
            performance=PerformanceEstimate(1.0, 25.0),
            n_params=100, sources={},
        )
        row = report.summary_row()
        assert "f1=0.9000" in row and "cus=10" in row

    def test_compile_report_best_single_model(self):
        from repro.backends.base import PerformanceEstimate

        model_report = ModelReport(
            name="ad", algorithm="dnn", best_config={}, objective=0.9,
            float_objective=0.9, metric="f1", feasible=True, resources={},
            performance=PerformanceEstimate(1.0, 25.0), n_params=1, sources={},
        )
        report = CompileReport(
            target="taurus", constraints={}, schedule="ad",
            models={"ad": model_report},
        )
        assert report.best is model_report
        assert "taurus" in report.summary()

    def test_best_none_for_multi_model(self):
        report = CompileReport(
            target="taurus", constraints={}, schedule="a | b",
            models={"a": None, "b": None},
        )
        assert report.best is None
