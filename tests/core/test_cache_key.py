"""Spill-file keys must distinguish datasets by content, not just shape."""

import numpy as np

from repro.backends.taurus import TaurusBackend
from repro.core.compiler import family_cache_path
from repro.datasets.base import Dataset


def make_dataset(fill: float, name: str = "d") -> Dataset:
    rng = np.random.default_rng(0)
    train_x = rng.normal(size=(20, 4)) + fill
    test_x = rng.normal(size=(8, 4)) + fill
    return Dataset(
        train_x=train_x,
        train_y=np.array([0, 1] * 10),
        test_x=test_x,
        test_y=np.array([0, 1] * 4),
        name=name,
    )


class TestContentDigest:
    def test_same_contents_same_digest(self):
        assert make_dataset(0.0).content_digest() == make_dataset(0.0).content_digest()

    def test_different_contents_different_digest(self):
        assert make_dataset(0.0).content_digest() != make_dataset(1.0).content_digest()

    def test_label_change_changes_digest(self):
        a = make_dataset(0.0)
        b = make_dataset(0.0)
        b.train_y = b.train_y.copy()
        b.train_y[0] = 1 - b.train_y[0]
        assert a.content_digest() != b.content_digest()

    def test_memoized_digest_not_inherited_by_derived_datasets(self):
        a = make_dataset(0.0)
        full = a.content_digest()  # memoize on the parent
        subset = a.subset_features([0, 1])
        assert subset.content_digest() != full
        half_a, _ = a.split_half(seed=0)
        assert half_a.content_digest() != full


class TestFamilyCachePath:
    def kwargs(self):
        return dict(
            cache_dir="cache",
            model_name="m",
            algorithm="dnn",
            backend=TaurusBackend(),
            constraints={"resources": {"rows": 16}},
            seed=0,
            train_epochs=30,
        )

    def test_same_shape_different_contents_distinct_spills(self):
        # The ROADMAP collision: identical shapes, different values.
        a = make_dataset(0.0)
        b = make_dataset(1.0)
        assert a.train_x.shape == b.train_x.shape
        path_a = family_cache_path(dataset=a, **self.kwargs())
        path_b = family_cache_path(dataset=b, **self.kwargs())
        assert path_a != path_b

    def test_identical_context_reuses_spill(self):
        a = make_dataset(0.5)
        b = make_dataset(0.5)
        assert family_cache_path(dataset=a, **self.kwargs()) == \
            family_cache_path(dataset=b, **self.kwargs())

    def test_seed_change_gets_fresh_spill(self):
        a = make_dataset(0.5)
        base = self.kwargs()
        changed = dict(base, seed=1)
        assert family_cache_path(dataset=a, **base) != \
            family_cache_path(dataset=a, **changed)
