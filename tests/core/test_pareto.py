"""Tests for the accuracy-vs-resources Pareto search."""

import pytest

from repro.alchemy import DataLoader, Model, Platforms
from repro.core.pareto import format_front, search_pareto
from repro.datasets import load_iot
from repro.errors import SpecificationError


@pytest.fixture(scope="module")
def tc_small():
    return load_iot(n_train=500, n_test=200, seed=11)


def make_spec(dataset):
    @DataLoader
    def loader():
        return dataset

    return Model(
        {
            "optimization_metric": ["f1"],
            "algorithm": ["dnn"],
            "name": "tc",
            "data_loader": loader,
        }
    )


@pytest.fixture(scope="module")
def frontier(tc_small):
    platform = Platforms.Taurus().constrain(resources={"rows": 16, "cols": 16})
    return search_pareto(
        make_spec(tc_small), platform, budget=8, warmup=4, train_epochs=8, seed=0
    )


class TestSearchPareto:
    def test_front_entries_feasible(self, frontier):
        assert frontier["front"]
        assert all(e.feasible for e in frontier["front"])

    def test_front_sorted_and_nondominated(self, frontier):
        rk, ok = frontier["resource_key"], frontier["objective_key"]
        resources = [e.metrics[rk] for e in frontier["front"]]
        objectives = [e.metrics[ok] for e in frontier["front"]]
        assert resources == sorted(resources)
        # Along the sorted frontier the objective must strictly improve.
        assert all(a < b for a, b in zip(objectives, objectives[1:]))

    def test_history_budget(self, frontier):
        assert len(frontier["history"]) == 8

    def test_resource_key_matches_target(self, frontier):
        assert frontier["resource_key"] == "resource_cus"

    def test_format_front(self, frontier):
        text = format_front(frontier)
        assert "Objective" in text
        assert "cus" in text

    def test_invalid_algorithm_rejected(self, tc_small):
        platform = Platforms.Taurus().constrain(resources={"rows": 16, "cols": 16})
        with pytest.raises(SpecificationError):
            search_pareto(make_spec(tc_small), platform, algorithm="kmeans", budget=2)
