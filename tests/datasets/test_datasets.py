"""Tests for the Dataset container and the three synthetic datasets."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    generate_botnet_flows,
    load_botnet,
    load_iot,
    load_nslkdd,
)
from repro.datasets.botnet import (
    BENIGN_PROFILES,
    BOTNET_PROFILES,
    flow_label,
    marker_dataset,
    partial_marker_dataset,
)
from repro.errors import DatasetError
from repro.netsim.flow import Flow
from repro.netsim.packet import Packet


class TestDatasetContainer:
    def _tiny(self):
        return Dataset(
            train_x=np.arange(12.0).reshape(6, 2),
            train_y=np.array([0, 1, 0, 1, 0, 1]),
            test_x=np.arange(8.0).reshape(4, 2),
            test_y=np.array([0, 1, 0, 1]),
            feature_names=("a", "b"),
            name="tiny",
        )

    def test_basic_properties(self):
        ds = self._tiny()
        assert ds.n_features == 2
        assert ds.n_classes == 2
        assert ds.n_train == 6 and ds.n_test == 4

    def test_loader_dict_round_trip(self):
        ds = self._tiny()
        rebuilt = Dataset.from_loader_dict(ds.to_loader_dict(), name="tiny")
        assert np.array_equal(rebuilt.train_x, ds.train_x)
        assert np.array_equal(rebuilt.test_y, ds.test_y)

    def test_malformed_loader_dict_raises(self):
        with pytest.raises(DatasetError):
            Dataset.from_loader_dict({"data": {}})

    def test_shape_validation(self):
        with pytest.raises(DatasetError):
            Dataset(
                train_x=np.ones((3, 2)), train_y=np.ones(2),
                test_x=np.ones((2, 2)), test_y=np.ones(2),
            )
        with pytest.raises(DatasetError):
            Dataset(
                train_x=np.ones((3, 2)), train_y=np.ones(3),
                test_x=np.ones((2, 3)), test_y=np.ones(2),
            )

    def test_feature_name_count_validated(self):
        with pytest.raises(DatasetError):
            Dataset(
                train_x=np.ones((3, 2)), train_y=np.ones(3),
                test_x=np.ones((2, 2)), test_y=np.ones(2),
                feature_names=("only_one",),
            )

    def test_subset_features(self):
        ds = self._tiny()
        sub = ds.subset_features([1])
        assert sub.n_features == 1
        assert sub.feature_names == ("b",)
        assert np.array_equal(sub.train_x[:, 0], ds.train_x[:, 1])

    def test_subset_empty_raises(self):
        with pytest.raises(DatasetError):
            self._tiny().subset_features([])

    def test_split_half_partitions_train(self):
        ds = self._tiny()
        a, b = ds.split_half(seed=0)
        assert a.n_train + b.n_train == ds.n_train
        assert a.n_test == ds.n_test  # both halves keep the full test set
        merged = np.sort(np.concatenate([a.train_x[:, 0], b.train_x[:, 0]]))
        assert np.array_equal(merged, np.sort(ds.train_x[:, 0]))


class TestNslKdd:
    def test_shapes_and_features(self):
        ds = load_nslkdd(n_train=300, n_test=100, seed=0)
        assert ds.train_x.shape == (300, 7)
        assert ds.test_x.shape == (100, 7)
        assert ds.n_classes == 2

    def test_deterministic(self):
        a = load_nslkdd(n_train=100, n_test=50, seed=3)
        b = load_nslkdd(n_train=100, n_test=50, seed=3)
        assert np.array_equal(a.train_x, b.train_x)

    def test_class_balance_near_requested(self):
        ds = load_nslkdd(n_train=1000, n_test=200, malicious_fraction=0.4,
                         label_noise=0.0, seed=1)
        assert abs(np.mean(ds.train_y) - 0.4) < 0.05

    def test_label_noise_caps_separability(self):
        clean = load_nslkdd(n_train=600, n_test=200, label_noise=0.0, seed=2)
        noisy = load_nslkdd(n_train=600, n_test=200, label_noise=0.2, seed=2)
        # Same features, different labels due to flips.
        assert not np.array_equal(clean.train_y, noisy.train_y)

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            load_nslkdd(malicious_fraction=0.0)
        with pytest.raises(DatasetError):
            load_nslkdd(label_noise=0.7)

    def test_learnable(self, ad_dataset):
        # A linear model should already beat chance on the synthetic task.
        from repro.ml import LinearSVM, StandardScaler, f1_score

        scaler = StandardScaler().fit(ad_dataset.train_x)
        svm = LinearSVM(seed=0, epochs=20).fit(
            scaler.transform(ad_dataset.train_x), ad_dataset.train_y
        )
        f1 = f1_score(ad_dataset.test_y, svm.predict(scaler.transform(ad_dataset.test_x)))
        assert f1 > 0.6


class TestIot:
    def test_shapes_and_classes(self):
        ds = load_iot(n_train=400, n_test=150, seed=0)
        assert ds.train_x.shape == (400, 7)
        assert ds.n_classes == 5

    def test_deterministic(self):
        a = load_iot(n_train=200, n_test=50, seed=4)
        b = load_iot(n_train=200, n_test=50, seed=4)
        assert np.array_equal(a.train_x, b.train_x)

    def test_all_classes_present(self):
        ds = load_iot(n_train=500, n_test=200, seed=5)
        assert set(np.unique(ds.train_y)) == {0, 1, 2, 3, 4}

    def test_too_small_raises(self):
        with pytest.raises(DatasetError):
            load_iot(n_train=2, n_test=2)


class TestBotnet:
    def test_flow_labels(self):
        flows = generate_botnet_flows(40, seed=0)
        names = {f.label for f in flows}
        known = {p.name for p in BOTNET_PROFILES} | {p.name for p in BENIGN_PROFILES}
        assert names <= known

    def test_flow_label_mapping(self):
        flows = generate_botnet_flows(40, seed=1)
        for flow in flows:
            assert flow_label(flow) in (0, 1)

    def test_unknown_label_raises(self):
        flow = Flow(
            [Packet(timestamp=0.0, size=100, src_ip=1, dst_ip=2,
                    src_port=1, dst_port=2)],
            label="mystery",
        )
        with pytest.raises(DatasetError):
            flow_label(flow)

    def test_marker_dataset_shapes(self):
        flows = generate_botnet_flows(30, seed=2)
        X, y = marker_dataset(flows)
        assert X.shape == (30, 30)
        assert set(np.unique(y)) <= {0, 1}

    def test_partial_dataset_positions(self):
        flows = generate_botnet_flows(10, seed=3)
        X, y, pos = partial_marker_dataset(flows, max_packets=5)
        assert pos.max() <= 5
        assert X.shape[0] == y.shape[0] == pos.shape[0]

    def test_load_botnet_per_packet_vs_flow(self):
        per_packet = load_botnet(n_train_flows=30, n_test_flows=10, seed=4)
        flow_level = load_botnet(n_train_flows=30, n_test_flows=10, seed=4,
                                 per_packet_test=False)
        assert per_packet.test_x.shape[0] > flow_level.test_x.shape[0]
        assert per_packet.train_x.shape == flow_level.train_x.shape

    def test_botnet_fraction_bounds(self):
        with pytest.raises(DatasetError):
            generate_botnet_flows(10, botnet_fraction=1.5)

    def test_histograms_separate_classes(self, bd_dataset):
        # Average markers of the two classes must differ substantially in
        # at least a few bins — the property Figure 6 relies on.
        X, y = bd_dataset.train_x, bd_dataset.train_y
        gap = np.abs(X[y == 1].mean(axis=0) - X[y == 0].mean(axis=0))
        assert (gap > 0.5).sum() >= 3


class TestCsvLoaders:
    def test_round_trip(self, tmp_path):
        from repro.datasets import load_csv_dataset, save_csv_dataset

        ds = load_nslkdd(n_train=50, n_test=20, seed=0)
        train_path, test_path = save_csv_dataset(ds, str(tmp_path), prefix="ad")
        rebuilt = load_csv_dataset(train_path, test_path, name="ad")
        assert np.allclose(rebuilt.train_x, ds.train_x, atol=1e-6)
        assert np.array_equal(rebuilt.train_y, ds.train_y)
        assert rebuilt.feature_names == ds.feature_names

    def test_missing_file_raises(self, tmp_path):
        from repro.datasets import load_csv_dataset

        with pytest.raises(DatasetError):
            load_csv_dataset(str(tmp_path / "nope.csv"), str(tmp_path / "nope2.csv"))
