"""Tests for the Alchemy DSL: Model, DataLoader, schedule, platforms, IOMap."""

import numpy as np
import pytest

from repro.alchemy import DataLoader, IOMap, IOMapper, Model, Platforms
from repro.alchemy.schedule import ScheduleNode
from repro.datasets import Dataset, load_nslkdd
from repro.errors import ConstraintError, SpecificationError


@pytest.fixture
def loader():
    @DataLoader
    def fn():
        return load_nslkdd(n_train=60, n_test=30, seed=0)

    return fn


@pytest.fixture
def model(loader):
    return Model(
        {
            "optimization_metric": ["f1"],
            "algorithm": ["dnn"],
            "name": "ad",
            "data_loader": loader,
        }
    )


class TestDataLoader:
    def test_wraps_dataset_return(self, loader):
        ds = loader.load("ad")
        assert isinstance(ds, Dataset)

    def test_wraps_dict_return(self):
        @DataLoader
        def fn():
            return {
                "data": {"train": np.ones((4, 2)), "test": np.ones((2, 2))},
                "labels": {"train": np.zeros(4), "test": np.zeros(2)},
            }

        assert fn.load().n_train == 4

    def test_caches_result(self):
        calls = []

        @DataLoader
        def fn():
            calls.append(1)
            return load_nslkdd(n_train=60, n_test=30, seed=0)

        fn.load()
        fn.load()
        assert len(calls) == 1

    def test_direct_call_still_works(self, loader):
        assert isinstance(loader(), Dataset)

    def test_non_callable_raises(self):
        with pytest.raises(SpecificationError):
            DataLoader(42)


class TestModel:
    def test_paper_dict_style(self, model):
        assert model.name == "ad"
        assert model.primary_metric == "f1"
        assert model.algorithms == ("dnn",)

    def test_kwargs_style(self, loader):
        m = Model(name="x", optimization_metric="accuracy", data_loader=loader)
        assert m.primary_metric == "accuracy"

    def test_empty_algorithms_means_auto(self, loader):
        m = Model(name="x", data_loader=loader)
        assert m.algorithms == ()

    def test_requires_name(self, loader):
        with pytest.raises(SpecificationError):
            Model(data_loader=loader)

    def test_requires_loader(self):
        with pytest.raises(SpecificationError):
            Model(name="x")

    def test_unknown_metric_rejected(self, loader):
        with pytest.raises(SpecificationError):
            Model(name="x", optimization_metric=["auc"], data_loader=loader)

    def test_unknown_algorithm_rejected(self, loader):
        with pytest.raises(SpecificationError):
            Model(name="x", algorithm=["transformer"], data_loader=loader)

    def test_unknown_key_rejected(self, loader):
        with pytest.raises(SpecificationError):
            Model({"name": "x", "data_loader": loader, "bogus": 1})

    def test_plain_callable_loader_accepted(self):
        m = Model(name="x", data_loader=lambda: load_nslkdd(n_train=60, n_test=30))
        assert m.load_dataset().n_train == 60


class TestSchedule:
    def test_sequential_operator(self, model, loader):
        other = Model(name="b", data_loader=loader)
        node = model > other
        assert node.kind == ScheduleNode.SEQ
        assert node.describe() == "ad > b"

    def test_parallel_operator(self, model, loader):
        other = Model(name="b", data_loader=loader)
        node = model | other
        assert node.describe() == "ad | b"

    def test_nested_composition(self, model):
        node = model >> (model | model) >> model
        assert node.describe() == "ad > (ad | ad) > ad"
        assert len(node.models()) == 4
        assert len(node.distinct_models()) == 1

    def test_chained_gt_is_a_python_footgun(self, model):
        # Chained ``>`` is a comparison chain: ``a > b > c`` silently
        # reduces to ``b > c``.  The ``>>`` alias composes correctly.
        chained = model > model > model > model
        assert len(chained.models()) == 2  # documented Python behaviour
        safe = model >> model >> model >> model
        assert len(safe.models()) == 4

    def test_distinct_models_by_identity(self, model, loader):
        other = Model(name="b", data_loader=loader)
        node = model > other > model
        assert len(node.distinct_models()) == 2

    def test_dag_sequential_edges(self, model, loader):
        other = Model(name="b", data_loader=loader)
        graph = (model > other).to_dag()
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1

    def test_dag_parallel_no_edges(self, model, loader):
        other = Model(name="b", data_loader=loader)
        graph = (model | other).to_dag()
        assert graph.number_of_edges() == 0

    def test_dag_diamond(self, model):
        graph = (model >> (model | model) >> model).to_dag()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4  # fan-out 2 + fan-in 2

    def test_effective_throughput_is_min(self, model, loader):
        fast = Model(name="fast", data_loader=loader)
        slow = Model(name="slow", data_loader=loader)
        node = fast > slow
        assert node.effective_throughput({"fast": 1.0, "slow": 0.5}) == 0.5

    def test_compose_with_garbage_raises(self, model):
        with pytest.raises(SpecificationError):
            model > 42


class TestPlatforms:
    def test_factories(self):
        assert Platforms.Taurus().target == "taurus"
        assert Platforms.Tofino().target == "tofino"
        assert Platforms.FPGA().target == "fpga"

    def test_constrain_kwargs(self):
        p = Platforms.Taurus().constrain(
            performance={"throughput": 2, "latency": 300},
            resources={"rows": 8, "cols": 8},
        )
        assert p.performance["throughput"] == 2
        assert p.resources["rows"] == 8

    def test_constrain_nested_dict(self):
        p = Platforms.Taurus().constrain(
            {"performance": {"latency": 100}, "resources": {"rows": 4, "cols": 4}}
        )
        assert p.performance["latency"] == 100

    def test_lt_operator_tuple(self):
        p = Platforms.Tofino() < ({"throughput": 1}, {"mats": 6})
        assert p.resources["mats"] == 6

    def test_lt_operator_dict(self):
        p = Platforms.Tofino() < {"resources": {"mats": 3}}
        assert p.resources["mats"] == 3

    def test_invalid_performance_key(self):
        with pytest.raises(ConstraintError):
            Platforms.Taurus().constrain(performance={"jitter": 1})

    def test_non_positive_rejected(self):
        with pytest.raises(ConstraintError):
            Platforms.Taurus().constrain(performance={"latency": -5})
        with pytest.raises(ConstraintError):
            Platforms.Taurus().constrain(resources={"rows": 0})

    def test_schedule_accumulates_parallel(self, model, loader):
        other = Model(name="b", data_loader=loader)
        p = Platforms.Taurus()
        p.schedule(model)
        p.schedule(other)
        assert p.schedule_root.kind == ScheduleNode.PAR

    def test_models_requires_schedule(self):
        with pytest.raises(SpecificationError):
            Platforms.Taurus().models()

    def test_constraints_expand_grid(self, model):
        p = Platforms.Taurus().constrain(resources={"rows": 4, "cols": 4})
        limits = p.constraints()["resources"]
        assert limits == {"cus": 16, "mus": 16}

    def test_unknown_platform_raises(self):
        from repro.alchemy.platforms import PlatformSpec

        with pytest.raises(SpecificationError):
            PlatformSpec("gpu")


class TestIOMap:
    def test_declared_mapper_routes(self):
        @IOMapper(["a", "b"], ["total"])
        def mapper(a, b):
            return {"total": a + b}

        io = IOMap(mapper)
        assert io.route(a=1, b=2) == {"total": 3}

    def test_missing_input_raises(self):
        @IOMapper(["a"], ["out"])
        def mapper(a):
            return {"out": a}

        with pytest.raises(SpecificationError):
            mapper()

    def test_missing_output_raises(self):
        @IOMapper(["a"], ["out"])
        def mapper(a):
            return {"wrong": a}

        with pytest.raises(SpecificationError):
            mapper(a=1)

    def test_non_dict_return_raises(self):
        @IOMapper(["a"], ["out"])
        def mapper(a):
            return a

        with pytest.raises(SpecificationError):
            mapper(a=1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError):
            IOMapper(["a", "a"], ["out"])(lambda a: {"out": a})

    def test_extra_outputs_filtered(self):
        @IOMapper(["a"], ["out"])
        def mapper(a):
            return {"out": a, "extra": 99}

        assert mapper(a=1) == {"out": 1}
