"""Docs sanity: every intra-repo markdown link resolves.

Scans README.md and docs/*.md for markdown links/images and asserts
that relative targets exist in the working tree (external URLs and
pure anchors are skipped).  Keeps the docs tree honest as files move.
"""

import os
import re

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

#: ``[text](target)`` and ``![alt](target)`` — good enough for our docs
#: (no nested brackets, no angle-bracket targets in use).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def doc_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def intra_repo_links(path):
    with open(path) as handle:
        text = handle.read()
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


@pytest.mark.parametrize(
    "doc", doc_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT)
)
def test_intra_repo_links_resolve(doc):
    missing = []
    for target in intra_repo_links(doc):
        # Strip a #fragment; resolve relative to the doc's directory.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(doc), file_part)
        )
        if not os.path.exists(resolved):
            missing.append(target)
    assert not missing, (
        f"{os.path.relpath(doc, REPO_ROOT)} has dangling links: {missing}"
    )


def test_docs_pages_exist():
    for page in ("architecture.md", "serving.md", "benchmarks.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", page)), page


def test_readme_links_into_docs():
    links = list(intra_repo_links(os.path.join(REPO_ROOT, "README.md")))
    assert any(link.startswith("docs/") for link in links), (
        "README should link into docs/"
    )
