"""Docs sanity: every intra-repo markdown link — and anchor — resolves.

Scans README.md, docs/*.md, and the generated docs/reference/*.md for
markdown links/images and asserts that relative targets exist in the
working tree and that ``#fragment`` anchors name a real heading in the
target document (GitHub slug rules, including duplicate-heading
suffixes).  External URLs are skipped.  Keeps the docs tree honest as
files move and headings get reworded.
"""

import os
import re

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

#: ``[text](target)`` and ``![alt](target)`` — good enough for our docs
#: (no nested brackets, no angle-bracket targets in use).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)


def doc_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for root, _dirs, names in os.walk(docs_dir):
        for name in sorted(names):
            if name.endswith(".md"):
                files.append(os.path.join(root, name))
    return files


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (must match tools/gen_api_docs.slugify)."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path):
    """All anchor slugs a markdown file exposes (duplicates suffixed)."""
    with open(path) as handle:
        text = handle.read()
    # Strip fenced code blocks: '# comment' lines inside them are not
    # headings and must not mint anchors.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    slugs = set()
    counts = {}
    for match in HEADING.finditer(text):
        slug = slugify(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def intra_repo_links(path):
    with open(path) as handle:
        text = handle.read()
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


@pytest.mark.parametrize(
    "doc", doc_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT)
)
def test_intra_repo_links_resolve(doc):
    missing = []
    for target in intra_repo_links(doc):
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(doc), file_part)
            )
            if not os.path.exists(resolved):
                missing.append(target)
                continue
        else:
            resolved = doc  # pure '#anchor' link: same document
        if fragment and resolved.endswith(".md"):
            if fragment not in heading_slugs(resolved):
                missing.append(f"{target} (no such anchor)")
    assert not missing, (
        f"{os.path.relpath(doc, REPO_ROOT)} has dangling links: {missing}"
    )


def test_docs_pages_exist():
    for page in ("architecture.md", "serving.md", "benchmarks.md", "distrib.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", page)), page


def test_reference_pages_exist():
    for page in ("index.md", "bayesopt.md", "distrib.md", "serving.md"):
        assert os.path.exists(
            os.path.join(REPO_ROOT, "docs", "reference", page)
        ), page


def test_reference_is_covered_by_link_scan():
    scanned = {os.path.relpath(p, REPO_ROOT) for p in doc_files()}
    assert "docs/reference/index.md" in scanned


def test_readme_links_into_docs():
    links = list(intra_repo_links(os.path.join(REPO_ROOT, "README.md")))
    assert any(link.startswith("docs/") for link in links), (
        "README should link into docs/"
    )
    assert any("distrib" in link for link in links), (
        "README should link the distributed-search doc"
    )
