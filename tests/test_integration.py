"""End-to-end integration tests: full ``generate()`` runs per backend.

These use tiny datasets and small budgets; they exercise the complete
frontend -> optimization -> backend path, including the model/hardware
equivalence checks that anchor the reproduction.
"""

import numpy as np
import pytest

import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.core.reports import CompileReport
from repro.datasets import load_iot, load_nslkdd
from repro.datasets.iot import CLUSTERING_FEATURES
from repro.errors import SpecificationError


@pytest.fixture(scope="module")
def small_ad():
    return load_nslkdd(n_train=500, n_test=200, seed=7)


@pytest.fixture(scope="module")
def small_tc():
    return load_iot(n_train=500, n_test=200, seed=11)


def make_spec(name, dataset, metric="f1", algorithms=("dnn",)):
    @DataLoader
    def loader():
        return dataset

    return Model(
        {
            "optimization_metric": [metric],
            "algorithm": list(algorithms),
            "name": name,
            "data_loader": loader,
        }
    )


class TestGenerateTaurus:
    @pytest.fixture(scope="class")
    def report(self, small_ad):
        platform = Platforms.Taurus().constrain(
            performance={"throughput": 1, "latency": 500},
            resources={"rows": 16, "cols": 16},
        )
        platform.schedule(make_spec("ad", small_ad))
        return repro.generate(platform, budget=6, warmup=3, train_epochs=12, seed=0)

    def test_report_shape(self, report):
        assert isinstance(report, CompileReport)
        assert report.target == "taurus"
        assert report.feasible
        assert report.best is not None

    def test_best_respects_constraints(self, report):
        best = report.best
        assert best.resources["cus"] <= 256
        assert best.resources["mus"] <= 256
        assert best.performance.throughput_gpps >= 1.0
        assert best.performance.latency_ns <= 500

    def test_sources_emitted(self, report):
        source = next(iter(report.best.sources.values()))
        assert "@spatial" in source

    def test_objective_reasonable(self, report):
        assert report.best.objective > 0.6

    def test_history_recorded(self, report):
        assert len(report.best.optimization.history) == 6

    def test_deterministic(self, small_ad):
        def run():
            platform = Platforms.Taurus().constrain(
                resources={"rows": 16, "cols": 16}
            )
            platform.schedule(make_spec("ad", small_ad))
            return repro.generate(platform, budget=4, warmup=2, train_epochs=8, seed=3)

        a, b = run(), run()
        assert a.best.best_config == b.best.best_config
        assert a.best.objective == b.best.objective


class TestGenerateTofino:
    def test_supervised_search(self, small_tc):
        platform = Platforms.Tofino().constrain(resources={"mats": 12})
        platform.schedule(
            make_spec("tc", small_tc, algorithms=("decision_tree", "svm"))
        )
        report = repro.generate(platform, budget=5, warmup=3, seed=0)
        best = report.best
        assert best.algorithm in ("decision_tree", "svm")
        assert best.resources["mats"] <= 12
        assert ".p4" in next(iter(best.sources))

    def test_kmeans_respects_mat_budget(self, small_tc):
        clustering = small_tc.subset_features(list(CLUSTERING_FEATURES))
        platform = Platforms.Tofino().constrain(resources={"mats": 3})
        platform.schedule(
            make_spec("tc_km", clustering, metric="v_measure", algorithms=("kmeans",))
        )
        report = repro.generate(platform, budget=5, warmup=3, seed=0)
        best = report.best
        assert best.best_config["n_clusters"] <= 3
        assert best.resources["mats"] <= 3


class TestGenerateFpga:
    def test_fpga_target(self, small_ad):
        platform = Platforms.FPGA()
        platform.schedule(make_spec("ad", small_ad))
        report = repro.generate(platform, budget=4, warmup=2, train_epochs=10, seed=0)
        best = report.best
        assert "lut_pct" in best.resources
        assert best.metadata["power_watts"] > 15.0


class TestMultiModel:
    def test_two_models_summed_resources(self, small_ad, small_tc):
        platform = Platforms.Taurus().constrain(resources={"rows": 16, "cols": 16})
        a = make_spec("ad", small_ad)
        b = make_spec("tc", small_tc)
        platform.schedule(a | b)
        report = repro.generate(platform, budget=4, warmup=2, train_epochs=8, seed=0)
        assert set(report.models) == {"ad", "tc"}
        total = report.total_resources["cus"]
        assert total == sum(r.resources["cus"] for r in report.models.values())

    def test_fusion_collapses_compatible_models(self, small_ad):
        part_a, part_b = small_ad.split_half(seed=0)
        platform = Platforms.Taurus().constrain(resources={"rows": 16, "cols": 16})
        platform.schedule(make_spec("ad1", part_a) | make_spec("ad2", part_b))
        report = repro.generate(
            platform, budget=4, warmup=2, train_epochs=8, seed=0, fuse=True
        )
        assert len(report.models) == 1  # fused into one model


class TestErrors:
    def test_generate_requires_schedule(self):
        with pytest.raises(SpecificationError):
            repro.generate(Platforms.Taurus())

    def test_generate_requires_platform(self):
        with pytest.raises(SpecificationError):
            repro.generate("taurus")

    def test_bad_budget(self, small_ad):
        platform = Platforms.Taurus()
        platform.schedule(make_spec("ad", small_ad))
        with pytest.raises(SpecificationError):
            repro.generate(platform, budget=0)


class TestHardwareEquivalence:
    """The lowered pipelines must agree with the trained float models."""

    def test_taurus_matches_trained_model(self, small_ad):
        from repro.backends.taurus import TaurusBackend
        from repro.ml import NeuralNetwork, StandardScaler

        scaler = StandardScaler().fit(small_ad.train_x)
        net = NeuralNetwork([7, 10, 1], seed=0)
        net.fit(scaler.transform(small_ad.train_x), small_ad.train_y.astype(float),
                epochs=15, learning_rate=0.01)
        pipe = TaurusBackend().compile_model(net, scaler=scaler)
        agreement = np.mean(
            pipe.predict(small_ad.test_x)
            == net.predict(scaler.transform(small_ad.test_x))
        )
        assert agreement > 0.97

    def test_tofino_tree_matches_trained_model(self, small_tc):
        from repro.backends.tofino import TofinoBackend
        from repro.ml import DecisionTreeClassifier, StandardScaler

        scaler = StandardScaler().fit(small_tc.train_x)
        tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(
            scaler.transform(small_tc.train_x), small_tc.train_y
        )
        pipe = TofinoBackend().compile_model(tree, scaler=scaler)
        agreement = np.mean(
            pipe.predict(small_tc.test_x)
            == tree.predict(scaler.transform(small_tc.test_x))
        )
        assert agreement > 0.99
