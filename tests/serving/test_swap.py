"""Hitless pipeline swap: engine CAS and router rolling upgrades."""

import asyncio

import numpy as np
import pytest

from repro.errors import HomunculusError
from repro.netsim.packet import Packet
from repro.runtime import PacketFeatureExtractor
from repro.serving import AsyncStreamEngine, PipelineRouter, Route


def make_packet(ts=0.0, size=100):
    return Packet(timestamp=ts, size=size, src_ip=1, dst_ip=2,
                  src_port=1000, dst_port=2000)


class ConstPipeline:
    """Predicts a constant — makes the swap point visible in the output."""

    def __init__(self, value: int):
        self.value = value

    def predict(self, X):
        return np.full(len(X), self.value, dtype=int)


class SizePipeline:
    def predict(self, X):
        return (np.asarray(X)[:, 0] > 500).astype(int)


class TestSwapPipeline:
    def test_swap_requires_predict(self):
        engine = AsyncStreamEngine(ConstPipeline(0), PacketFeatureExtractor())
        with pytest.raises(HomunculusError):
            engine.swap_pipeline(object())

    def test_cas_succeeds_against_expected(self):
        old = ConstPipeline(0)
        engine = AsyncStreamEngine(old, PacketFeatureExtractor())
        new = ConstPipeline(1)
        returned = engine.swap_pipeline(new, expected=old)
        assert returned is old
        assert engine.pipeline is new
        assert engine.pipeline_generation == 1
        assert engine.stats.swaps == 1
        assert len(engine.stats.swap_times) == 1

    def test_cas_fails_when_pipeline_changed_underneath(self):
        old = ConstPipeline(0)
        engine = AsyncStreamEngine(old, PacketFeatureExtractor())
        engine.swap_pipeline(ConstPipeline(1))  # someone else upgraded
        with pytest.raises(HomunculusError):
            engine.swap_pipeline(ConstPipeline(2), expected=old)

    def test_midstream_swap_is_hitless_in_block_mode(self):
        """The acceptance demo: zero drops, and every prediction matches
        the pipeline that was installed when its batch was served."""
        n, batch = 200, 16
        engine = AsyncStreamEngine(
            ConstPipeline(0), PacketFeatureExtractor(), batch_size=batch,
            queue_depth=32, drop_policy="block",
        )

        async def scenario():
            async def source():
                for i in range(n):
                    yield make_packet(ts=float(i)), None
                    if i == n // 2:
                        engine.swap_pipeline(ConstPipeline(1))
                    if i % 5 == 0:
                        await asyncio.sleep(0)

            return await engine.run(source())

        values = [int(v) for v in asyncio.run(scenario())]
        # Zero dropped items across the swap.
        assert len(values) == n
        assert engine.stats.dropped == 0
        assert engine.stats.enqueued == engine.stats.packets == n
        # The output is old-pipeline predictions, then new — the flip
        # happens exactly once, on a micro-batch boundary.
        flip = values.index(1)
        assert 0 < flip < n
        assert flip % batch == 0
        assert values == [0] * flip + [1] * (n - flip)
        assert engine.stats.swaps == 1

    def test_swap_between_runs(self):
        packets = [make_packet(ts=float(i)) for i in range(20)]
        engine = AsyncStreamEngine(
            ConstPipeline(0), PacketFeatureExtractor(), batch_size=8
        )
        first = engine.process(packets)
        engine.swap_pipeline(ConstPipeline(1))
        second = engine.process(packets)
        assert all(int(v) == 0 for v in first)
        assert all(int(v) == 1 for v in second)


class TestRollingSwap:
    def build(self):
        a = AsyncStreamEngine(ConstPipeline(0), PacketFeatureExtractor(),
                              batch_size=8, queue_depth=32)
        b = AsyncStreamEngine(ConstPipeline(0), PacketFeatureExtractor(),
                              batch_size=8, queue_depth=32)
        return a, b, PipelineRouter([Route("a", a), Route("b", b)])

    def test_unknown_route_rejected(self):
        _, _, router = self.build()
        with pytest.raises(HomunculusError):
            asyncio.run(router.rolling_swap({"nope": ConstPipeline(1)}))

    def test_rolling_swap_between_runs(self):
        a, b, router = self.build()
        old = asyncio.run(router.rolling_swap({"a": ConstPipeline(1)}))
        assert old["a"].value == 0
        assert a.pipeline.value == 1
        assert b.pipeline.value == 0  # untouched route keeps its model

    def test_rolling_swap_mid_stream_zero_drops(self):
        n = 240
        a, b, router = self.build()
        swapped = {}

        async def scenario():
            async def source():
                for i in range(n):
                    yield make_packet(ts=float(i)), None
                    if i == n // 2:
                        swapped.update(await router.rolling_swap(
                            {"a": ConstPipeline(1), "b": ConstPipeline(2)}
                        ))
                    if i % 5 == 0:
                        await asyncio.sleep(0)

            return await router.run(source())

        results = asyncio.run(scenario())
        assert swapped["a"].value == 0 and swapped["b"].value == 0
        for name, new_value in (("a", 1), ("b", 2)):
            values = [int(v) for v in results[name]]
            stats = router.stats[name]
            assert len(values) == n
            assert stats.dropped == 0
            flip = values.index(new_value)
            assert values == [0] * flip + [new_value] * (n - flip)
            assert stats.swaps == 1

    def test_swap_while_draining_inflight(self):
        """drain_inflight + swap while batches are actually in flight:
        the old pipeline finishes its dispatched batches, the new one
        takes over, and nothing is lost or reordered."""
        import time

        class SlowConst(ConstPipeline):
            def predict(self, X):
                time.sleep(0.01)
                return super().predict(X)

        n = 120
        engine = AsyncStreamEngine(
            SlowConst(0), PacketFeatureExtractor(), batch_size=8,
            queue_depth=16, drop_policy="block", infer_workers=2,
        )
        router = PipelineRouter([Route("only", engine)])

        async def scenario():
            async def source():
                for i in range(n):
                    yield make_packet(ts=float(i)), None
                    if i == n // 2:
                        # Batches are in flight right now (slow predict).
                        await router.rolling_swap({"only": SlowConst(1)})
                    if i % 3 == 0:
                        await asyncio.sleep(0)

            return await router.run(source())

        values = [int(v) for v in asyncio.run(scenario())["only"]]
        assert len(values) == n
        assert engine.stats.dropped == 0
        flip = values.index(1)
        assert values == [0] * flip + [1] * (n - flip)
