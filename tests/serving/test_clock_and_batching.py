"""Tests for the serving clocks, trace replay, and the micro-batcher."""

import asyncio

import numpy as np
import pytest

from repro.errors import HomunculusError
from repro.netsim.packet import Packet
from repro.serving import LatencyHistogram, MicroBatcher, VirtualClock, replay
from repro.serving.batching import SENTINEL


def make_packet(ts=0.0, size=100, src=1, dst=2):
    return Packet(timestamp=ts, size=size, src_ip=src, dst_ip=dst,
                  src_port=1000, dst_port=2000)


class TestVirtualClock:
    def test_sleep_advances_without_waiting(self):
        clock = VirtualClock()

        async def scenario():
            await clock.sleep(3600.0)
            return clock.now()

        assert asyncio.run(scenario()) == 3600.0

    def test_advance_rejects_negative(self):
        with pytest.raises(HomunculusError):
            VirtualClock().advance(-1.0)


class TestReplay:
    def test_unpaced_yields_everything_in_order(self):
        packets = [make_packet(ts=float(i)) for i in range(10)]

        async def collect():
            return [item async for item in replay(packets, labels=range(10))]

        items = asyncio.run(collect())
        assert [p.timestamp for p, _ in items] == [float(i) for i in range(10)]
        assert [label for _, label in items] == list(range(10))

    def test_virtual_pacing_is_deterministic(self):
        packets = [make_packet(ts=float(i)) for i in range(5)]
        clock = VirtualClock()

        async def collect():
            return [item async for item in replay(packets, speed=2.0, clock=clock)]

        items = asyncio.run(collect())
        assert len(items) == 5
        # 4 seconds of capture replayed at 2x -> 2 virtual seconds.
        assert clock.now() == pytest.approx(2.0)

    def test_negative_speed_rejected(self):
        async def drain():
            async for _ in replay([], speed=-1.0):
                pass

        with pytest.raises(HomunculusError):
            asyncio.run(drain())


def run_batcher(chunks, batch_size, max_latency=None, gap=0.0):
    """Feed chunks (with optional real-time gaps) through a MicroBatcher."""
    flushes = []
    batcher = MicroBatcher(
        batch_size=batch_size,
        max_latency=max_latency,
        on_flush=lambda n, deadline: flushes.append((n, deadline)),
    )

    async def scenario():
        q_in, q_out = asyncio.Queue(), asyncio.Queue()
        task = asyncio.create_task(batcher.run(q_in, q_out))
        for chunk in chunks:
            await q_in.put(chunk)
            if gap:
                await asyncio.sleep(gap)
        await q_in.put(SENTINEL)
        batches = []
        while True:
            batch = await q_out.get()
            if batch is SENTINEL:
                break
            batches.append(batch)
        await task
        return batches

    return asyncio.run(scenario()), flushes


class TestMicroBatcher:
    def test_size_flush_exact_boundaries(self):
        batches, flushes = run_batcher([list(range(10))], batch_size=4)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert batches[0] == [0, 1, 2, 3]
        # Only the end-of-stream drain is partial, and nothing was a
        # deadline flush.
        assert all(not deadline for _, deadline in flushes)

    def test_deadline_flush_single_item(self):
        # One lone item, batch never fills: the deadline must flush it.
        batches, flushes = run_batcher(
            [[42]], batch_size=64, max_latency=0.05, gap=0.3
        )
        assert batches == [[42]]
        assert flushes == [(1, True)]

    def test_deadline_not_hit_when_batch_fills_first(self):
        batches, flushes = run_batcher(
            [list(range(8))], batch_size=4, max_latency=10.0
        )
        assert [len(b) for b in batches] == [4, 4]
        assert all(not deadline for _, deadline in flushes)

    def test_bad_parameters(self):
        with pytest.raises(HomunculusError):
            MicroBatcher(batch_size=0)
        with pytest.raises(HomunculusError):
            MicroBatcher(batch_size=1, max_latency=0.0)


class TestLatencyHistogram:
    def test_percentiles_bracket_observations(self):
        hist = LatencyHistogram()
        for value in np.linspace(1e-4, 1e-2, 500):
            hist.observe(float(value))
        p50 = hist.percentile(50)
        p99 = hist.percentile(99)
        # Log-binned estimates: within one bin (~15% relative) of truth.
        assert 3e-3 < p50 < 7e-3
        assert 8e-3 < p99 < 1.2e-2
        assert hist.count == 500

    def test_vectorized_matches_scalar(self):
        values = np.geomspace(1e-6, 1.0, 200)
        one = LatencyHistogram()
        for v in values:
            one.observe(float(v))
        many = LatencyHistogram()
        many.observe_batch(values)
        assert np.array_equal(one._counts, many._counts)
        assert one.count == many.count
        for q in (50, 90, 95, 99):
            assert one.percentile(q) == many.percentile(q)

    def test_empty_percentile(self):
        assert LatencyHistogram().percentile(99) == 0.0

    def test_bad_percentile(self):
        with pytest.raises(HomunculusError):
            LatencyHistogram().percentile(101)
