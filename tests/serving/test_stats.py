"""Telemetry: ring-buffered series, lane histograms, swap counters."""

import numpy as np
import pytest

from repro.errors import HomunculusError
from repro.serving.stats import RingSeries, ServingStats


class TestRingSeries:
    def test_capacity_validated(self):
        with pytest.raises(HomunculusError):
            RingSeries(capacity=0)

    def test_running_stats_cover_all_samples(self):
        s = RingSeries(capacity=4)
        for t, depth in enumerate([0, 3, 9, 4, 1, 2]):
            s.observe(depth, t=float(t))
        # max/mean are over *all* samples, not just the retained ring.
        assert s.max == 9
        assert s.mean == pytest.approx(19 / 6)
        assert len(s) == 4

    def test_ring_keeps_most_recent_in_order(self):
        s = RingSeries(capacity=3)
        for t in range(7):
            s.observe(t * 10, t=float(t))
        times, values = s.samples()
        assert list(times) == [4.0, 5.0, 6.0]
        assert list(values) == [40.0, 50.0, 60.0]

    def test_partial_ring_in_order(self):
        s = RingSeries(capacity=8)
        s.observe(5, t=1.0)
        s.observe(7, t=2.0)
        times, values = s.samples()
        assert list(times) == [1.0, 2.0]
        assert list(values) == [5.0, 7.0]

    def test_gauge_compatible_aliases(self):
        s = RingSeries()
        s.observe(4)
        s.observe(2)
        assert s.max_depth == s.max == 4
        assert s.mean_depth == s.mean == 3.0


class TestRingSeriesBatch:
    def test_batch_equals_loop_of_observes(self):
        a, b = RingSeries(capacity=5), RingSeries(capacity=5)
        values = [3.0, 1.0, 9.0, 2.0, 8.0, 4.0, 7.0]
        times = [float(t) for t in range(len(values))]
        for v, t in zip(values, times):
            a.observe(v, t=t)
        b.observe_batch(values, times=times)
        assert a.samples()[0].tolist() == b.samples()[0].tolist()
        assert a.samples()[1].tolist() == b.samples()[1].tolist()
        assert a.max == b.max and a.mean == b.mean
        assert len(a) == len(b)

    def test_oversized_batch_keeps_newest_but_counts_all(self):
        s = RingSeries(capacity=3)
        s.observe_batch(list(range(10)), times=[float(t) for t in range(10)])
        times, values = s.samples()
        assert list(values) == [7.0, 8.0, 9.0]
        assert s.max == 9.0
        assert s.mean == pytest.approx(4.5)  # over all 10, not just 3

    def test_scalar_time_broadcasts(self):
        s = RingSeries(capacity=4)
        s.observe_batch([1.0, 2.0], times=5.0)
        assert s.samples()[0].tolist() == [5.0, 5.0]

    def test_empty_batch_is_noop(self):
        s = RingSeries(capacity=4)
        s.observe_batch([])
        assert len(s) == 0

    def test_mismatched_times_rejected(self):
        s = RingSeries(capacity=4)
        with pytest.raises(HomunculusError):
            s.observe_batch([1.0, 2.0], times=[0.0])

    def test_batch_wraps_existing_ring(self):
        s = RingSeries(capacity=4)
        for t in range(3):
            s.observe(float(t), t=float(t))
        s.observe_batch([10.0, 11.0, 12.0], times=[3.0, 4.0, 5.0])
        times, values = s.samples()
        assert list(times) == [2.0, 3.0, 4.0, 5.0]
        assert list(values) == [2.0, 10.0, 11.0, 12.0]


class TestServingStats:
    def test_queue_series_created_on_demand(self):
        stats = ServingStats()
        stats.observe_queue("ingress", 3, t=0.5)
        stats.observe_queue("ingress", 7, t=1.0)
        series = stats.queues["ingress"]
        assert series.max == 7
        times, values = series.samples()
        assert list(values) == [3.0, 7.0]
        assert stats.summary()["queue_max_depth"] == {"ingress": 7}

    def test_lane_drops_and_latency_in_summary(self):
        stats = ServingStats()
        stats.observe_lane_latency(0, [1e-4, 2e-4])
        stats.observe_lane_latency(1, [5e-3])
        stats.drop("ingress", lane=1)
        summary = stats.summary()
        assert set(summary["lane_latency_p99_us"]) == {0, 1}
        assert summary["lane_drops"] == {0: 0, 1: 1}
        assert stats.lane_latency[0].count == 2

    def test_lane_that_lost_everything_still_reported(self):
        # A lane whose packets were all shed never reaches the record
        # stage, so it has no latency histogram — it must still appear
        # in the per-lane drop breakdown.
        stats = ServingStats()
        stats.observe_lane_latency(0, [1e-4])
        stats.drop("ingress", n=7, lane=1)
        summary = stats.summary()
        assert summary["lane_drops"] == {0: 0, 1: 7}
        assert set(summary["lane_latency_p99_us"]) == {0}

    def test_mark_swap(self):
        stats = ServingStats()
        stats.mark_swap(12.5)
        stats.mark_swap()
        assert stats.swaps == 2
        assert stats.swap_times == [12.5]
        assert stats.summary()["swaps"] == 2

    def test_conservation_fields_default_clean(self):
        stats = ServingStats()
        summary = stats.summary()
        assert summary["enqueued"] == summary["dropped"] == 0
        assert "lane_latency_p99_us" not in summary  # no lanes configured

    def test_latency_series_rings(self):
        stats = ServingStats()
        for i in range(600):
            stats.latency_series.observe(i * 1e-6, t=float(i))
        assert len(stats.latency_series) == stats.latency_series.capacity
        _, values = stats.latency_series.samples()
        assert np.argmax(values) == len(values) - 1  # newest retained