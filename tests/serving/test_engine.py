"""Tests for the async serving engine: equivalence, drops, drain, cancel."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.backends.taurus import TaurusBackend
from repro.datasets import load_botnet
from repro.datasets.botnet import flow_label, generate_botnet_flows
from repro.errors import HomunculusError
from repro.eval.baselines import train_baseline_dnn
from repro.netsim.packet import Packet
from repro.runtime import (
    FlowmarkerTracker,
    PacketFeatureExtractor,
    StreamProcessor,
)
from repro.serving import AsyncStreamEngine, TimedPipeline, replay


def make_packet(ts=0.0, size=100, src=1, dst=2):
    return Packet(timestamp=ts, size=size, src_ip=src, dst_ip=dst,
                  src_port=1000, dst_port=2000)


class ToyPipeline:
    """Deterministic stand-in: predicts size > 500, optionally slow."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.calls = 0

    def predict(self, X):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return (np.asarray(X)[:, 0] > 500).astype(int)


def interleaved(flows, label_fn=None):
    tagged = []
    for flow in flows:
        label = label_fn(flow) if label_fn is not None else None
        for packet in flow:
            tagged.append((packet.timestamp, packet, label))
    tagged.sort(key=lambda item: item[0])
    return [t[1] for t in tagged], [t[2] for t in tagged]


class TestValidation:
    def test_pipeline_must_predict(self):
        with pytest.raises(HomunculusError):
            AsyncStreamEngine(object(), PacketFeatureExtractor())

    def test_extractor_must_extract(self):
        with pytest.raises(HomunculusError):
            AsyncStreamEngine(ToyPipeline(), object())

    def test_bad_drop_policy(self):
        with pytest.raises(HomunculusError):
            AsyncStreamEngine(ToyPipeline(), PacketFeatureExtractor(),
                              drop_policy="random-early")

    def test_lane_of_requires_priorities(self):
        with pytest.raises(HomunculusError):
            AsyncStreamEngine(ToyPipeline(), PacketFeatureExtractor(),
                              lane_of=lambda p: 0)

    def test_bad_priorities(self):
        with pytest.raises(HomunculusError):
            AsyncStreamEngine(ToyPipeline(), PacketFeatureExtractor(),
                              priorities=(0, 0))
        with pytest.raises(HomunculusError):
            AsyncStreamEngine(ToyPipeline(), PacketFeatureExtractor(),
                              priorities=(-1, 2))

    def test_bad_queue_depth(self):
        with pytest.raises(HomunculusError):
            AsyncStreamEngine(ToyPipeline(), PacketFeatureExtractor(),
                              queue_depth=0)

    def test_bad_infer_workers(self):
        with pytest.raises(HomunculusError):
            AsyncStreamEngine(ToyPipeline(), PacketFeatureExtractor(),
                              infer_workers=0)


class TestBlockModeEquivalence:
    """Block mode must be bit-identical to the synchronous processor."""

    @pytest.fixture(scope="class")
    def bd_pipeline(self):
        dataset = load_botnet(n_train_flows=150, n_test_flows=2, seed=13,
                              per_packet_test=False)
        net, scaler = train_baseline_dnn("bd", dataset, seed=0)
        return TaurusBackend().compile_model(net, scaler=scaler, name="bd")

    @pytest.mark.parametrize("infer_workers", [1, 3])
    def test_predictions_and_stats_identical(self, bd_pipeline, infer_workers):
        flows = generate_botnet_flows(80, seed=7)
        packets, labels = interleaved(flows, flow_label)

        sync = StreamProcessor(
            bd_pipeline, FlowmarkerTracker(max_conversations=512), batch_size=64
        )
        sync_predictions = sync.process(packets, labels)

        engine = AsyncStreamEngine(
            bd_pipeline,
            FlowmarkerTracker(max_conversations=512),
            batch_size=64,
            drop_policy="block",
            infer_workers=infer_workers,
        )
        async_predictions = engine.process(packets, labels)

        assert np.array_equal(
            np.asarray(sync_predictions), np.asarray(async_predictions)
        )
        s, a = sync.stats, engine.stats
        assert s.packets == a.packets
        assert s.class_counts == a.class_counts
        assert s.correct == a.correct
        assert s.labeled == a.labeled
        assert s.confusion == a.confusion
        assert a.dropped == 0

    def test_small_queue_still_lossless(self, bd_pipeline):
        flows = generate_botnet_flows(20, seed=3)
        packets, labels = interleaved(flows, flow_label)
        sync = StreamProcessor(
            bd_pipeline, FlowmarkerTracker(max_conversations=512), batch_size=16
        ).process(packets, labels)
        engine = AsyncStreamEngine(
            bd_pipeline, FlowmarkerTracker(max_conversations=512),
            batch_size=16, queue_depth=8, drop_policy="block",
        )
        assert np.array_equal(
            np.asarray(sync), np.asarray(engine.process(packets, labels))
        )
        assert engine.stats.enqueued == len(packets)


class TestTailDrop:
    def test_drop_accounting_under_full_queue(self):
        # A slow pipeline with a tiny ingress queue: the unpaced burst
        # must overflow it, and every lost packet must be accounted for.
        packets = [make_packet(ts=float(i), size=600) for i in range(400)]
        engine = AsyncStreamEngine(
            ToyPipeline(delay_s=0.02),
            PacketFeatureExtractor(),
            batch_size=8,
            queue_depth=16,
            drop_policy="tail-drop",
            infer_workers=1,
        )
        predictions = engine.process(packets)
        stats = engine.stats
        assert stats.drops.get("ingress", 0) > 0
        # ``enqueued`` counts every arrival; the conservation law holds.
        assert stats.enqueued == len(packets)
        assert stats.enqueued == stats.packets + stats.dropped
        # Everything admitted eventually came out the other end.
        assert len(predictions) == stats.packets
        assert all(int(p) == 1 for p in predictions)

    def test_block_policy_never_drops(self):
        packets = [make_packet(ts=float(i)) for i in range(300)]
        engine = AsyncStreamEngine(
            ToyPipeline(delay_s=0.005),
            PacketFeatureExtractor(),
            batch_size=32,
            queue_depth=16,
            drop_policy="block",
        )
        predictions = engine.process(packets)
        assert len(predictions) == len(packets)
        assert engine.stats.dropped == 0


class TestDeadline:
    def test_single_packet_flushes_on_deadline(self):
        # batch_size is never reached; without the deadline this would
        # hang until end-of-stream.  The packet must flow through within
        # max_latency (plus scheduling slack), not wait for a full batch.
        engine = AsyncStreamEngine(
            ToyPipeline(),
            PacketFeatureExtractor(),
            batch_size=1024,
            max_latency=0.05,
        )

        async def scenario():
            async def trickle():
                yield make_packet(ts=0.0, size=800), None
                # Keep the stream open long past the deadline.
                await asyncio.sleep(0.4)

            return await engine.run(trickle())

        start = time.monotonic()
        predictions = asyncio.run(scenario())
        elapsed = time.monotonic() - start
        assert [int(p) for p in predictions] == [1]
        assert engine.stats.deadline_flushes >= 1
        assert elapsed < 1.0
        # The flush happened at the deadline, not at end-of-stream: the
        # recorded latency is far below the 0.4 s the stream stayed open.
        assert engine.stats.latency.max < 0.3

    def test_deadline_off_batches_by_size_only(self):
        packets = [make_packet(ts=float(i)) for i in range(100)]
        engine = AsyncStreamEngine(
            ToyPipeline(), PacketFeatureExtractor(), batch_size=30
        )
        engine.process(packets)
        assert engine.stats.deadline_flushes == 0
        assert engine.stats.batches == 4  # 30+30+30+10


class TestDrainAndCancel:
    def test_clean_drain_records_everything(self):
        packets = [make_packet(ts=float(i)) for i in range(257)]
        engine = AsyncStreamEngine(
            ToyPipeline(), PacketFeatureExtractor(), batch_size=64
        )
        predictions = engine.process(packets)
        assert len(predictions) == 257
        assert engine.stats.packets == 257
        assert engine.stats.batches == 5  # 4 full + 1 drain flush
        assert engine.stats.finished_at is not None

    def test_cancellation_cancels_all_stages(self):
        engine = AsyncStreamEngine(
            ToyPipeline(delay_s=0.01),
            PacketFeatureExtractor(),
            batch_size=4,
            infer_workers=2,
        )

        async def scenario():
            async def endless():
                i = 0
                while True:
                    yield make_packet(ts=float(i)), None
                    i += 1
                    if i % 16 == 0:
                        await asyncio.sleep(0)

            task = asyncio.create_task(engine.run(endless()))
            await asyncio.sleep(0.15)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # Every stage task died with the run: nothing left behind.
            pending = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task() and not t.done()
            ]
            return pending

        pending = asyncio.run(scenario())
        assert pending == []
        # The engine made progress before the cancel, and telemetry was
        # finalized on the way out.
        assert engine.stats.packets > 0
        assert engine.stats.finished_at is not None

    def test_source_error_propagates(self):
        engine = AsyncStreamEngine(
            ToyPipeline(), PacketFeatureExtractor(), batch_size=8
        )

        async def scenario():
            async def broken():
                yield make_packet(ts=0.0), None
                raise RuntimeError("capture truncated")

            await engine.run(broken())

        with pytest.raises(RuntimeError, match="capture truncated"):
            asyncio.run(scenario())


class TestTimedPipeline:
    def test_functional_equivalence_and_accounting(self):
        toy = ToyPipeline()
        timed = TimedPipeline(toy, per_batch_s=0.001)
        X = np.array([[600.0], [100.0]])
        assert np.array_equal(timed.predict(X), np.array([1, 0]))
        assert timed.calls == 1
        assert timed.busy_s >= 0.001
        assert timed.service_time(10) >= 0.001

    def test_channel_gate_serializes(self):
        toy = ToyPipeline()
        timed = TimedPipeline(toy, per_batch_s=0.05, max_channels=1)
        X = np.array([[600.0]])
        start = time.monotonic()
        threads = [
            threading.Thread(target=timed.predict, args=(X,)) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One channel: the three 50 ms calls serialize.
        assert time.monotonic() - start >= 0.15 * 0.9

    def test_validation(self):
        with pytest.raises(HomunculusError):
            TimedPipeline(object())
        with pytest.raises(HomunculusError):
            TimedPipeline(ToyPipeline(), per_batch_s=-1.0)

    def test_per_row_from_performance_estimate(self):
        class WithPerf(ToyPipeline):
            class performance:
                throughput_gpps = 1.0

        timed = TimedPipeline(WithPerf())
        assert timed.per_row_s == pytest.approx(1e-9)


class TestReplayPacing:
    def test_paced_replay_bounds_wallclock(self):
        # 200 packets over 2.0 s of capture at 100x -> ~20 ms of pacing.
        packets = [make_packet(ts=i * 0.01) for i in range(200)]
        engine = AsyncStreamEngine(
            ToyPipeline(), PacketFeatureExtractor(), batch_size=32,
            max_latency=0.005,
        )

        async def scenario():
            return await engine.run(replay(packets, speed=100.0))

        start = time.monotonic()
        predictions = asyncio.run(scenario())
        elapsed = time.monotonic() - start
        assert len(predictions) == 200
        assert elapsed >= 0.015  # pacing actually waited
