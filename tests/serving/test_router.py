"""Tests for multi-pipeline routing over a shared ingest stream."""

import numpy as np
import pytest

from repro.errors import HomunculusError
from repro.netsim.packet import PROTO_TCP, PROTO_UDP, Packet
from repro.runtime import FlowmarkerTracker, PacketFeatureExtractor
from repro.serving import AsyncStreamEngine, PipelineRouter, Route


def make_packet(ts=0.0, size=100, src=1, dst=2, protocol=PROTO_TCP):
    return Packet(timestamp=ts, size=size, src_ip=src, dst_ip=dst,
                  src_port=1000, dst_port=2000, protocol=protocol)


class SizePipeline:
    def predict(self, X):
        return (np.asarray(X)[:, 0] > 500).astype(int)


class CountPipeline:
    """Predicts from the flowmarker packet count (first-bin mass)."""

    def predict(self, X):
        return (np.asarray(X).sum(axis=1) > 2).astype(int)


def build_router():
    ad = AsyncStreamEngine(SizePipeline(), PacketFeatureExtractor(),
                           batch_size=16)
    bd = AsyncStreamEngine(CountPipeline(),
                           FlowmarkerTracker(max_conversations=64),
                           batch_size=16)
    return ad, bd, PipelineRouter([Route("ad", ad), Route("bd", bd)])


class TestPipelineRouter:
    def test_routes_share_one_stream(self):
        ad, bd, router = build_router()
        packets = [make_packet(ts=float(i), size=600 if i % 2 else 100)
                   for i in range(64)]
        results = router.process(packets)
        assert set(results) == {"ad", "bd"}
        assert len(results["ad"]) == 64
        assert len(results["bd"]) == 64
        assert ad.stats.packets == bd.stats.packets == 64
        # Each route ran its own extractor: AD saw per-packet features,
        # BD accumulated conversation state.
        assert [int(p) for p in results["ad"]] == [i % 2 for i in range(64)]

    def test_per_route_labels_from_dict(self):
        _, _, router = build_router()
        packets = [make_packet(ts=float(i), size=600) for i in range(8)]
        labels = [{"ad": 1} for _ in packets]  # bd stays unlabeled
        results = router.process(packets, labels)
        stats = router.stats
        assert stats["ad"].labeled == 8
        assert stats["ad"].accuracy == 1.0
        assert stats["bd"].labeled == 0
        assert len(results["bd"]) == 8

    def test_scalar_label_applies_to_all_routes(self):
        _, _, router = build_router()
        packets = [make_packet(ts=float(i), size=600) for i in range(4)]
        router.process(packets, labels=[1, 1, 1, 1])
        stats = router.stats
        assert stats["ad"].labeled == 4
        assert stats["bd"].labeled == 4

    def test_accept_filter_partitions_traffic(self):
        ad = AsyncStreamEngine(SizePipeline(), PacketFeatureExtractor(),
                               batch_size=4)
        bd = AsyncStreamEngine(SizePipeline(), PacketFeatureExtractor(),
                               batch_size=4)
        router = PipelineRouter([
            Route("tcp", ad, accept=lambda p: p.protocol == PROTO_TCP),
            Route("udp", bd, accept=lambda p: p.protocol == PROTO_UDP),
        ])
        packets = [
            make_packet(ts=float(i),
                        protocol=PROTO_TCP if i < 10 else PROTO_UDP)
            for i in range(25)
        ]
        results = router.process(packets)
        assert len(results["tcp"]) == 10
        assert len(results["udp"]) == 15

    def test_duplicate_names_rejected(self):
        engine = AsyncStreamEngine(SizePipeline(), PacketFeatureExtractor())
        with pytest.raises(HomunculusError):
            PipelineRouter([Route("x", engine), Route("x", engine)])

    def test_empty_router_rejected(self):
        with pytest.raises(HomunculusError):
            PipelineRouter([])
