"""Unit tests for queue disciplines and the DRR priority channel."""

import asyncio

import pytest

from repro.errors import HomunculusError
from repro.serving.channel import (
    DISCIPLINES,
    SENTINEL,
    BoundedChannel,
    PriorityChannel,
    make_discipline,
)


class TestDisciplines:
    def test_registry_names(self):
        assert set(DISCIPLINES) == {"block", "tail-drop", "head-drop"}

    def test_unknown_discipline_rejected(self):
        with pytest.raises(HomunculusError):
            make_discipline("wred")

    def test_block_refuses_when_full(self):
        ch = BoundedChannel(1, discipline="block")
        assert ch.offer("a") == (True, None)
        assert ch.offer("b") == (False, None)  # caller escalates to put()
        assert ch.qsize() == 1

    def test_tail_drop_sheds_the_arrival(self):
        ch = BoundedChannel(2, discipline="tail-drop")
        ch.offer("a")
        ch.offer("b")
        admitted, displaced = ch.offer("c")
        assert (admitted, displaced) == (False, "c")
        assert ch.get_nowait() == "a"  # queue content untouched

    def test_head_drop_evicts_the_oldest(self):
        ch = BoundedChannel(2, discipline="head-drop")
        ch.offer("a")
        ch.offer("b")
        admitted, displaced = ch.offer("c")
        assert (admitted, displaced) == (True, "a")
        assert [ch.get_nowait(), ch.get_nowait()] == ["b", "c"]
        assert ch.qsize() == 0

    def test_offer_wakes_blocked_getter(self):
        async def scenario():
            ch = BoundedChannel(4, discipline="tail-drop")

            async def consumer():
                return await ch.get()

            task = asyncio.create_task(consumer())
            await asyncio.sleep(0)
            ch.offer("x")
            return await task

        assert asyncio.run(scenario()) == "x"


class TestPriorityChannel:
    def test_validation(self):
        with pytest.raises(HomunculusError):
            PriorityChannel(8, ())
        with pytest.raises(HomunculusError):
            PriorityChannel(8, (0, 0))  # needs one positive weight
        with pytest.raises(HomunculusError):
            PriorityChannel(8, (1, -2))
        with pytest.raises(HomunculusError):
            PriorityChannel(0, (1,))
        with pytest.raises(HomunculusError):
            PriorityChannel(8, (1, 1)).put_nowait("x", lane=2)

    def test_single_lane_degenerates_to_fifo(self):
        ch = PriorityChannel(8, (3,))
        for i in range(5):
            ch.put_nowait(i)
        assert [ch.get_nowait() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_drr_interleaves_by_weight(self):
        ch = PriorityChannel(16, (2, 1))
        for i in range(6):
            ch.put_nowait(("hi", i), 0)
        for i in range(3):
            ch.put_nowait(("lo", i), 1)
        order = [ch.get_nowait()[0] for _ in range(9)]
        # 2:1 service while both lanes are backlogged.
        assert order == ["hi", "hi", "lo", "hi", "hi", "lo", "hi", "hi", "lo"]

    def test_work_conserving_when_a_lane_is_empty(self):
        ch = PriorityChannel(16, (4, 1))
        for i in range(3):
            ch.put_nowait(i, 1)  # only the low lane has traffic
        assert [ch.get_nowait() for _ in range(3)] == [0, 1, 2]

    def test_zero_weight_lane_is_scavenger(self):
        ch = PriorityChannel(16, (1, 0))
        ch.put_nowait("bulk", 1)
        ch.put_nowait("urgent", 0)
        # The weighted lane is served first even though bulk arrived first.
        assert ch.get_nowait() == "urgent"
        assert ch.get_nowait() == "bulk"
        assert ch.qsize() == 0

    def test_per_lane_depth_and_discipline(self):
        ch = PriorityChannel(2, (1, 1), discipline="tail-drop")
        assert ch.offer("a", 0) == (True, None)
        assert ch.offer("b", 0) == (True, None)
        assert ch.offer("c", 0) == (False, "c")  # lane 0 full
        assert ch.offer("d", 1) == (True, None)  # lane 1 unaffected
        assert ch.lane_sizes() == (2, 1)

    def test_head_drop_keeps_size_stable(self):
        ch = PriorityChannel(2, (1,), discipline="head-drop")
        ch.offer("a")
        ch.offer("b")
        admitted, displaced = ch.offer("c")
        assert (admitted, displaced) == (True, "a")
        assert ch.qsize() == 2

    def test_close_yields_sentinel_after_drain(self):
        ch = PriorityChannel(8, (1, 2))
        ch.put_nowait("x", 0)
        ch.close()
        assert ch.get_nowait() == "x"
        assert ch.get_nowait() is SENTINEL
        assert ch.get_nowait() is SENTINEL  # closed stays closed

    def test_blocking_get_woken_by_close(self):
        async def scenario():
            ch = PriorityChannel(4, (1,))

            async def consumer():
                return await ch.get()

            task = asyncio.create_task(consumer())
            await asyncio.sleep(0)
            ch.close()
            return await task

        assert asyncio.run(scenario()) is SENTINEL

    def test_blocking_put_woken_by_pop(self):
        async def scenario():
            ch = PriorityChannel(1, (1, 1))
            ch.put_nowait("a", 0)

            async def producer():
                await ch.put("b", 0)
                return "done"

            task = asyncio.create_task(producer())
            await asyncio.sleep(0)
            assert not task.done()
            assert ch.get_nowait() == "a"
            await asyncio.sleep(0)
            result = await task
            return result, ch.get_nowait()

        assert asyncio.run(scenario()) == ("done", "b")
