"""Engine-level discipline and priority-lane behaviour under load."""

import numpy as np
import pytest

from repro.netsim.packet import Packet
from repro.runtime import PacketFeatureExtractor
from repro.serving import AsyncStreamEngine, PipelineRouter, Route


def make_packet(ts=0.0, size=100):
    return Packet(timestamp=ts, size=size, src_ip=1, dst_ip=2,
                  src_port=1000, dst_port=2000)


class SlowPipeline:
    """Deterministic size>500 predictor with a configurable stall."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s

    def predict(self, X):
        if self.delay_s:
            import time

            time.sleep(self.delay_s)
        return (np.asarray(X)[:, 0] > 500).astype(int)


def overload_engine(drop_policy, **kwargs):
    return AsyncStreamEngine(
        SlowPipeline(delay_s=0.02),
        PacketFeatureExtractor(),
        batch_size=8,
        queue_depth=16,
        drop_policy=drop_policy,
        infer_workers=1,
        **kwargs,
    )


@pytest.mark.parametrize("drop_policy", ["tail-drop", "head-drop"])
class TestCounterConservation:
    def test_enqueued_equals_served_plus_dropped(self, drop_policy):
        packets = [make_packet(ts=float(i), size=600) for i in range(400)]
        engine = overload_engine(drop_policy)
        predictions = engine.process(packets)
        stats = engine.stats
        assert stats.drops.get("ingress", 0) > 0
        assert stats.enqueued == len(packets)
        assert stats.enqueued == stats.packets + stats.dropped
        assert len(predictions) == stats.packets


class TestHeadDrop:
    def test_head_drop_serves_fresher_packets_than_tail_drop(self):
        # Packet index is encoded in the size; under overload head-drop
        # must retain later (fresher) arrivals than tail-drop does.
        packets = [make_packet(ts=float(i), size=1000 + i) for i in range(400)]

        class Echo:
            def predict(self, X):
                import time

                time.sleep(0.02)
                return np.asarray(X)[:, 0].astype(int) - 1000

        def run(policy):
            engine = AsyncStreamEngine(
                Echo(), PacketFeatureExtractor(), batch_size=8,
                queue_depth=16, drop_policy=policy, infer_workers=1,
            )
            served = [int(v) for v in engine.process(packets)]
            return served, engine.stats

        tail_served, tail_stats = run("tail-drop")
        head_served, head_stats = run("head-drop")
        assert tail_stats.dropped > 0 and head_stats.dropped > 0
        # Both policies preserve arrival order among survivors.
        assert tail_served == sorted(tail_served)
        assert head_served == sorted(head_served)
        # Head-drop always serves the final arrivals (they evict, never
        # get evicted once the stream ends); tail-drop sheds them.
        assert head_served[-1] == 399
        assert np.mean(head_served) > np.mean(tail_served)

    def test_head_drop_is_lossless_when_not_overloaded(self):
        packets = [make_packet(ts=float(i), size=600) for i in range(100)]
        engine = AsyncStreamEngine(
            SlowPipeline(), PacketFeatureExtractor(), batch_size=16,
            queue_depth=256, drop_policy="head-drop",
        )
        assert len(engine.process(packets)) == 100
        assert engine.stats.dropped == 0


class TestPriorityLanes:
    def lane_of(self, packet):
        return 0 if packet.size > 500 else 1

    def test_all_lanes_served_and_accounted(self):
        packets = [make_packet(ts=float(i), size=600 if i % 4 == 0 else 100)
                   for i in range(200)]
        engine = AsyncStreamEngine(
            SlowPipeline(), PacketFeatureExtractor(), batch_size=16,
            priorities=(4, 1), lane_of=self.lane_of,
        )
        predictions = engine.process(packets)
        assert len(predictions) == 200
        stats = engine.stats
        assert set(stats.lane_latency) == {0, 1}
        assert stats.lane_latency[0].count == 50
        assert stats.lane_latency[1].count == 150

    def test_single_lane_degeneracy_matches_fifo(self):
        # One lane of weight w is a plain bounded FIFO: predictions and
        # counters must match the default engine bit for bit.
        packets = [make_packet(ts=float(i), size=600 if i % 2 else 100)
                   for i in range(150)]
        fifo = AsyncStreamEngine(
            SlowPipeline(), PacketFeatureExtractor(), batch_size=16
        )
        single = AsyncStreamEngine(
            SlowPipeline(), PacketFeatureExtractor(), batch_size=16,
            priorities=(3,),
        )
        fifo_out = fifo.process(packets)
        single_out = single.process(packets)
        assert np.array_equal(np.asarray(fifo_out), np.asarray(single_out))
        assert fifo.stats.packets == single.stats.packets
        assert fifo.stats.batches == single.stats.batches

    def test_zero_weight_lane_starves_until_weighted_empty(self):
        # Scavenger lane: its packets still come out (end-of-stream
        # drains everything) and are accounted per lane.
        packets = [make_packet(ts=float(i), size=600 if i < 50 else 100)
                   for i in range(100)]
        engine = AsyncStreamEngine(
            SlowPipeline(), PacketFeatureExtractor(), batch_size=8,
            priorities=(1, 0), lane_of=self.lane_of,
        )
        predictions = engine.process(packets)
        assert len(predictions) == 100
        assert engine.stats.lane_latency[0].count == 50
        assert engine.stats.lane_latency[1].count == 50

    def test_priority_lane_waits_less_under_overload(self):
        # Flood a slow engine: the weighted lane's queueing delay must
        # sit well below the bulk lane's.
        packets = [make_packet(ts=float(i), size=600 if i % 8 == 0 else 100)
                   for i in range(600)]
        engine = AsyncStreamEngine(
            SlowPipeline(delay_s=0.01), PacketFeatureExtractor(),
            batch_size=8, queue_depth=64, drop_policy="tail-drop",
            infer_workers=1, priorities=(8, 1), lane_of=self.lane_of,
        )
        engine.process(packets)
        stats = engine.stats
        hi = stats.lane_latency[0]
        lo = stats.lane_latency[1]
        assert hi.count > 0 and lo.count > 0
        assert hi.mean < lo.mean


class TestRouterWeights:
    def test_weights_validate(self):
        engine = AsyncStreamEngine(SlowPipeline(), PacketFeatureExtractor())
        with pytest.raises(Exception):
            PipelineRouter([Route("x", engine, weight=0)])

    def test_weights_set_extraction_quanta(self):
        a = AsyncStreamEngine(SlowPipeline(), PacketFeatureExtractor())
        b = AsyncStreamEngine(SlowPipeline(), PacketFeatureExtractor())
        PipelineRouter([Route("hi", a, weight=4), Route("lo", b, weight=1)])
        assert a.extract_quantum == 4 * b.extract_quantum > 0

    def test_equal_weights_leave_quanta_greedy(self):
        a = AsyncStreamEngine(SlowPipeline(), PacketFeatureExtractor())
        b = AsyncStreamEngine(SlowPipeline(), PacketFeatureExtractor())
        PipelineRouter([Route("hi", a), Route("lo", b)])
        assert a.extract_quantum == b.extract_quantum == 0

    def test_weighted_routes_still_lossless_in_block_mode(self):
        a = AsyncStreamEngine(SlowPipeline(), PacketFeatureExtractor(),
                              batch_size=16)
        b = AsyncStreamEngine(SlowPipeline(), PacketFeatureExtractor(),
                              batch_size=16)
        router = PipelineRouter([Route("hi", a, weight=4),
                                 Route("lo", b, weight=1)])
        packets = [make_packet(ts=float(i), size=600) for i in range(120)]
        results = router.process(packets)
        assert len(results["hi"]) == len(results["lo"]) == 120
        assert a.stats.dropped == b.stats.dropped == 0
