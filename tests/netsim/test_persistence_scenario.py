"""Tests for binary trace persistence and HyperMapper scenario files."""

import pytest

from repro.bayesopt.scenario import (
    optimizer_from_scenario,
    scenario_from_json,
    scenario_to_json,
)
from repro.bayesopt.space import DesignSpace, Integer, Real
from repro.datasets.botnet import generate_botnet_flows
from repro.errors import DatasetError, DesignSpaceError
from repro.netsim.persistence import read_trace, write_trace


class TestTracePersistence:
    def test_round_trip_packet_counts(self, tmp_path):
        flows = generate_botnet_flows(20, seed=0)
        path = str(tmp_path / "trace.bin")
        written = write_trace(path, flows)
        assert written == sum(len(f) for f in flows)
        loaded = read_trace(path)
        assert sum(len(f) for f in loaded) == written

    def test_round_trip_preserves_fields(self, tmp_path):
        flows = generate_botnet_flows(10, seed=1)
        path = str(tmp_path / "trace.bin")
        write_trace(path, flows)
        loaded = read_trace(path)
        original = {
            (p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.size)
            for f in flows
            for p in f
        }
        reloaded = {
            (p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.size)
            for f in loaded
            for p in f
        }
        assert original == reloaded

    def test_labels_survive(self, tmp_path):
        flows = generate_botnet_flows(15, seed=2)
        path = str(tmp_path / "trace.bin")
        write_trace(path, flows)
        loaded = read_trace(path)
        labels = {f.label for f in loaded if f.label is not None}
        assert labels <= {"storm", "waledac", "utorrent", "vuze", "emule", "frostwire"}
        assert labels  # at least some labels survive

    def test_flows_time_ordered(self, tmp_path):
        flows = generate_botnet_flows(10, seed=3)
        path = str(tmp_path / "trace.bin")
        write_trace(path, flows)
        for flow in read_trace(path):
            ts = [p.timestamp for p in flow]
            assert all(a <= b for a, b in zip(ts, ts[1:]))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(DatasetError):
            read_trace(str(path))

    def test_truncated_rejected(self, tmp_path):
        flows = generate_botnet_flows(5, seed=4)
        path = str(tmp_path / "trace.bin")
        write_trace(path, flows)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(DatasetError):
            read_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_trace(str(tmp_path / "nope.bin"))


class TestScenario:
    @pytest.fixture
    def space(self):
        return DesignSpace([Integer("layers", 1, 5), Real("lr", 0.001, 0.1)])

    def test_round_trip(self, space):
        text = scenario_to_json("ad", space, budget=15, warmup=4, metric="f1", seed=3)
        scenario = scenario_from_json(text)
        assert scenario["name"] == "ad"
        assert scenario["budget"] == 15
        assert scenario["warmup"] == 4
        assert scenario["metric"] == "f1"
        assert scenario["seed"] == 3
        assert scenario["space"].names == space.names

    def test_hypermapper_keys_present(self, space):
        import json

        doc = json.loads(scenario_to_json("ad", space))
        assert doc["models"] == {"model": "random_forest"}
        assert doc["design_of_experiment"]["doe_type"] == "random sampling"

    def test_optimizer_from_scenario_runs(self, space):
        text = scenario_to_json("toy", space, budget=12, warmup=3, seed=0)
        optimizer, budget = optimizer_from_scenario(
            text, lambda cfg: float(cfg["layers"])
        )
        result = optimizer.run(budget)
        assert len(result) == 12
        assert result.best.objective >= 4.0  # near-max of the 5 levels

    def test_malformed_rejected(self):
        with pytest.raises(DesignSpaceError):
            scenario_from_json("{not json")
        with pytest.raises(DesignSpaceError):
            scenario_from_json("{}")

    def test_bad_budget_rejected(self, space):
        with pytest.raises(DesignSpaceError):
            scenario_to_json("x", space, budget=0)
