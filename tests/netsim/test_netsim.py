"""Tests for packets, flows, traces, features, and flowmarkers."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.netsim import (
    Flow,
    FlowTable,
    Packet,
    TrafficProfile,
    build_flowmarker,
    conversation_key,
    five_tuple,
    generate_flow,
    generate_trace,
    packet_features,
    partial_flowmarkers,
)
from repro.netsim.features import PACKET_FEATURE_NAMES, flow_packet_features
from repro.netsim.flowmarker import (
    FLOWLENS_SPEC,
    PAPER_SPEC,
    FlowMarkerSpec,
    average_marker,
    fuse_bins,
)


def make_packet(ts=0.0, size=100, src=1, dst=2, sport=1000, dport=2000, proto=6):
    return Packet(
        timestamp=ts, size=size, src_ip=src, dst_ip=dst,
        src_port=sport, dst_port=dport, protocol=proto,
    )


class TestPacket:
    def test_valid_packet(self):
        p = make_packet()
        assert p.size == 100

    def test_negative_timestamp_rejected(self):
        with pytest.raises(DatasetError):
            make_packet(ts=-1.0)

    def test_size_bounds(self):
        with pytest.raises(DatasetError):
            make_packet(size=10)
        with pytest.raises(DatasetError):
            make_packet(size=20000)

    def test_address_bounds(self):
        with pytest.raises(DatasetError):
            make_packet(src=2**32)

    def test_port_bounds(self):
        with pytest.raises(DatasetError):
            make_packet(sport=70000)

    def test_five_tuple(self):
        p = make_packet()
        assert five_tuple(p) == (1, 2, 1000, 2000, 6)

    def test_conversation_key_direction_insensitive(self):
        a = make_packet(src=1, dst=2)
        b = make_packet(src=2, dst=1)
        assert conversation_key(a) == conversation_key(b)


class TestFlow:
    def test_ordering_enforced(self):
        flow = Flow([make_packet(ts=1.0)])
        with pytest.raises(DatasetError):
            flow.add(make_packet(ts=0.5))

    def test_duration(self):
        flow = Flow([make_packet(ts=1.0), make_packet(ts=4.0)])
        assert flow.duration == pytest.approx(3.0)

    def test_singleton_stats(self):
        flow = Flow([make_packet()])
        assert flow.duration == 0.0
        assert flow.inter_arrival_times.size == 0
        assert flow.mean_ipt == 0.0

    def test_total_bytes_and_mean_size(self):
        flow = Flow([make_packet(size=100), make_packet(ts=1.0, size=300)])
        assert flow.total_bytes == 400
        assert flow.mean_size == 200.0

    def test_inter_arrival_times(self):
        flow = Flow([make_packet(ts=0.0), make_packet(ts=2.0), make_packet(ts=3.0)])
        assert np.allclose(flow.inter_arrival_times, [2.0, 1.0])


class TestFlowTable:
    def test_groups_by_five_tuple(self):
        table = FlowTable()
        table.observe(make_packet(ts=0.0))
        table.observe(make_packet(ts=1.0))
        table.observe(make_packet(ts=2.0, sport=9999))
        assert len(table) == 2

    def test_conversation_key_merges_directions(self):
        table = FlowTable(key_fn=conversation_key)
        table.observe(make_packet(ts=0.0, src=1, dst=2))
        table.observe(make_packet(ts=1.0, src=2, dst=1))
        assert len(table) == 1
        assert len(table[(1, 2)]) == 2


class TestTrafficProfile:
    def test_validation(self):
        with pytest.raises(DatasetError):
            TrafficProfile("x", size_mean=0, size_sigma=0.1, ipt_mean=1,
                           ipt_sigma=0.1, flow_length_mean=5)
        with pytest.raises(DatasetError):
            TrafficProfile("x", size_mean=100, size_sigma=0.1, ipt_mean=1,
                           ipt_sigma=0.1, flow_length_mean=1)

    def test_generate_flow_structure(self):
        profile = TrafficProfile("app", size_mean=500, size_sigma=0.2,
                                 ipt_mean=1.0, ipt_sigma=0.3, flow_length_mean=10)
        flow = generate_flow(profile, seed=0)
        assert flow.label == "app"
        assert len(flow) >= 2
        ts = [p.timestamp for p in flow]
        assert all(a <= b for a, b in zip(ts, ts[1:]))

    def test_generate_flow_deterministic(self):
        profile = TrafficProfile("app", size_mean=500, size_sigma=0.2,
                                 ipt_mean=1.0, ipt_sigma=0.3, flow_length_mean=10)
        a = generate_flow(profile, seed=5)
        b = generate_flow(profile, seed=5)
        assert [p.size for p in a] == [p.size for p in b]

    def test_port_range_respected(self):
        profile = TrafficProfile("app", size_mean=500, size_sigma=0.2,
                                 ipt_mean=1.0, ipt_sigma=0.3,
                                 flow_length_mean=10, port_range=(4000, 4010))
        flow = generate_flow(profile, seed=0)
        assert all(4000 <= p.dst_port <= 4010 for p in flow)

    def test_generate_trace_mix(self):
        a = TrafficProfile("a", size_mean=100, size_sigma=0.1, ipt_mean=1,
                           ipt_sigma=0.1, flow_length_mean=5)
        b = TrafficProfile("b", size_mean=800, size_sigma=0.1, ipt_mean=1,
                           ipt_sigma=0.1, flow_length_mean=5)
        flows = generate_trace([a, b], 50, seed=0, weights=[0.8, 0.2])
        labels = [f.label for f in flows]
        assert labels.count("a") > labels.count("b")

    def test_generate_trace_validation(self):
        a = TrafficProfile("a", size_mean=100, size_sigma=0.1, ipt_mean=1,
                           ipt_sigma=0.1, flow_length_mean=5)
        with pytest.raises(DatasetError):
            generate_trace([a], 0)
        with pytest.raises(DatasetError):
            generate_trace([a], 5, weights=[0.5, 0.5])


class TestFeatures:
    def test_feature_vector_shape_and_names(self):
        vec = packet_features(make_packet())
        assert vec.shape == (len(PACKET_FEATURE_NAMES),)

    def test_feature_values(self):
        p = make_packet(size=123, proto=17)
        vec = packet_features(p)
        assert vec[0] == 123.0
        assert vec[1] == 17.0

    def test_ip_pair_hash_deterministic(self):
        a = packet_features(make_packet())
        b = packet_features(make_packet())
        assert a[6] == b[6]

    def test_flow_matrix(self):
        flow = Flow([make_packet(ts=float(i)) for i in range(5)])
        assert flow_packet_features(flow).shape == (5, 7)


class TestFlowMarker:
    def test_spec_total_bins(self):
        assert PAPER_SPEC.total_bins == 30
        assert FLOWLENS_SPEC.total_bins == 151

    def test_pl_binning_clamps(self):
        spec = FlowMarkerSpec(pl_bin_size=64, pl_bins=4, ipt_bin_size=1.0, ipt_bins=2)
        assert spec.pl_bin(0) == 0
        assert spec.pl_bin(64) == 1
        assert spec.pl_bin(10_000) == 3  # clamped into last bin

    def test_ipt_binning_clamps(self):
        spec = FlowMarkerSpec(pl_bin_size=64, pl_bins=2, ipt_bin_size=512.0, ipt_bins=3)
        assert spec.ipt_bin(0.0) == 0
        assert spec.ipt_bin(513.0) == 1
        assert spec.ipt_bin(1e9) == 2

    def test_negative_gap_raises(self):
        with pytest.raises(DatasetError):
            PAPER_SPEC.ipt_bin(-1.0)

    def test_marker_counts_conserved(self):
        flow = Flow([make_packet(ts=float(i), size=100 + i) for i in range(8)])
        marker = build_flowmarker(flow)
        assert marker[: PAPER_SPEC.pl_bins].sum() == 8  # one count per packet
        assert marker[PAPER_SPEC.pl_bins :].sum() == 7  # one per gap

    def test_partial_markers_monotone(self):
        flow = Flow([make_packet(ts=float(i)) for i in range(6)])
        previous = None
        count = 0
        for marker in partial_flowmarkers(flow):
            if previous is not None:
                assert np.all(marker >= previous)
            previous = marker
            count += 1
        assert count == 6

    def test_last_partial_equals_full(self):
        flow = Flow([make_packet(ts=float(i), size=100 + 64 * i) for i in range(5)])
        partials = list(partial_flowmarkers(flow))
        assert np.array_equal(partials[-1], build_flowmarker(flow))

    def test_fuse_bins_preserves_mass(self):
        marker = np.arange(10.0)
        fused = fuse_bins(marker, 3)
        assert fused.sum() == marker.sum()
        assert fused.shape == (4,)

    def test_fuse_factor_one_is_copy(self):
        marker = np.arange(5.0)
        fused = fuse_bins(marker, 1)
        assert np.array_equal(fused, marker)
        assert fused is not marker

    def test_average_marker(self):
        flows = [Flow([make_packet(ts=0.0), make_packet(ts=1.0)]) for _ in range(3)]
        avg = average_marker(flows)
        assert avg[PAPER_SPEC.pl_bin(100)] == pytest.approx(2.0)

    def test_average_empty_raises(self):
        with pytest.raises(DatasetError):
            average_marker([])
