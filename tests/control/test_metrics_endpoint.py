"""``GET /metrics`` and ``GET /trace`` on the control server.

The scrape surface has two modes: with ``REPRO_OBS`` off it still
serves the fleet's embedded serving telemetry (pull-model collectors
read live :class:`ServingStats` at scrape time), and with it on the
process registry and span buffer ride along — deploy counters, span
totals, and the rollout's control spans all become visible over HTTP.
"""

import asyncio

from repro.control import (
    ControlClient,
    ControlServer,
    FleetController,
)
from repro.obs.registry import REGISTRY, parse_prometheus
from repro.obs.trace import reset_tracer

from test_controller import (
    ToyPipeline,
    fast_gate,
    make_worker,
    start_fleet,
    stop_fleet,
)


def by_name(parsed):
    grouped: dict = {}
    for (name, labels), value in parsed.items():
        grouped.setdefault(name, {})[labels] = value
    return grouped


async def scrape_scenario(deploy=True):
    w0, w1 = make_worker("w0"), make_worker("w1")
    # Deliberately lenient gate: these tests pin the scrape surface,
    # not the regression verdict, so don't let a loaded CI box abort
    # the rollout on latency noise or thin post-swap traffic.
    controller = FleetController(
        [w0, w1],
        gate=fast_gate(latency_floor_s=5.0, min_batches=1, settle_s=10.0),
    )
    controller.register_pipeline("v1", ToyPipeline())
    await start_fleet([w0, w1])
    server = ControlServer(controller)
    port = await server.start()
    client = ControlClient("127.0.0.1", port)
    try:
        report = await client.deploy("v1") if deploy else None
        text = await client.metrics()
        trace = await client.trace()
    finally:
        await server.stop()
        await stop_fleet([w0, w1])
    return report, text, trace


class TestScrapeWithObsOff:
    def test_serving_telemetry_without_registry(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        reset_tracer()
        _, text, trace = asyncio.run(scrape_scenario(deploy=False))
        metrics = by_name(parse_prometheus(text))
        # Pull-model collectors expose per-worker serving counters even
        # though the process registry never saw a single write.
        packets = metrics["repro_serving_packets_total"]
        assert {labels for labels in packets} == {
            (("worker", "w0"),), (("worker", "w1"),),
        }
        assert all(value >= 0 for value in packets.values())
        # No registry families and no spans leak into the scrape.
        assert "repro_control_deploys_total" not in metrics
        assert trace == {"events": []}


class TestScrapeWithObsOn:
    def test_deploy_counters_and_spans_visible(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        REGISTRY.clear()
        reset_tracer()
        try:
            report, text, trace = asyncio.run(scrape_scenario())
        finally:
            reset_tracer()
            REGISTRY.clear()
        assert report["ok"] is True
        metrics = by_name(parse_prometheus(text))
        assert metrics["repro_control_deploys_total"][
            (("outcome", "ok"),)] == 1
        assert metrics["repro_control_ops_total"][(("op", "deploy"),)] == 1
        # The span counter agrees with the buffered trace events.
        names = {event["name"] for event in trace["events"]}
        assert {"control.deploy", "control.swap", "control.settle"} <= names
        spans = metrics["repro_spans_total"]
        assert spans[(("name", "control.deploy"),)] == 1
        assert spans[(("name", "control.swap"),)] == 2   # two workers
        # Exposition stays well-formed under labels + histogram families.
        assert "# TYPE repro_spans_total counter" in text


class TestContentType:
    def test_metrics_served_as_prometheus_text(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)

        async def scenario():
            w0 = make_worker("w0")
            controller = FleetController([w0], gate=fast_gate())
            controller.register_pipeline("v1", ToyPipeline())
            await start_fleet([w0])
            server = ControlServer(controller)
            port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(b"GET /metrics HTTP/1.1\r\n"
                             b"Host: x\r\nConnection: close\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await stop_fleet([w0])
            return raw.decode("utf-8", "replace")

        response = asyncio.run(scenario())
        head, _, body = response.partition("\r\n\r\n")
        assert " 200 " in head.splitlines()[0]
        assert "text/plain; version=0.0.4; charset=utf-8" in head
        parse_prometheus(body)   # must be well-formed exposition
