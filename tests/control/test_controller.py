"""Fleet-controller failure paths.

The happy rolling-deploy path is covered end to end by
``benchmarks/bench_control.py``; these tests pin the contract when
things go wrong — a worker dying mid-rollout, a regression tripping the
telemetry gate, and the one-mutation-at-a-time guard surfacing as an
HTTP 409 through the real server/client pair.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.control import (
    ControlClient,
    ControlServer,
    FleetController,
    FleetWorker,
    RegressionGate,
)
from repro.errors import ControlError, DeployConflict
from repro.netsim.packet import Packet
from repro.runtime import PacketFeatureExtractor
from repro.serving import AsyncStreamEngine


def make_packet(ts, size=100):
    return Packet(timestamp=ts, size=size, src_ip=1, dst_ip=2,
                  src_port=1000, dst_port=2000)


class ToyPipeline:
    """Deterministic stand-in: predicts size > 500, optionally slow."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.calls = 0

    def predict(self, X):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return (np.asarray(X)[:, 0] > 500).astype(int)


async def endless():
    """Paced synthetic traffic; runs until the consuming task is cancelled."""
    i = 0
    while True:
        yield make_packet(ts=float(i)), None
        i += 1
        if i % 4 == 0:
            await asyncio.sleep(0.002)


def make_worker(name, pipeline=None):
    engine = AsyncStreamEngine(
        pipeline if pipeline is not None else ToyPipeline(),
        PacketFeatureExtractor(),
        batch_size=8,
        max_latency=0.02,
        queue_depth=4096,
    )
    return FleetWorker(name, engine)


def fast_gate(**overrides):
    """A gate tuned for sub-second tests on a noisy event loop."""
    base = dict(latency_factor=3.0, latency_floor_s=0.05,
                drop_margin=0.01, min_batches=2, settle_s=8.0, poll_s=0.005)
    base.update(overrides)
    return RegressionGate(**base)


async def start_fleet(workers):
    for worker in workers:
        worker.attach(asyncio.create_task(worker.engine.run(endless())))
    # Let every worker record some pre-swap telemetry.
    await asyncio.sleep(0.4)


async def stop_fleet(workers):
    for worker in workers:
        if worker.task is not None:
            worker.task.cancel()
    await asyncio.gather(*(w.task for w in workers if w.task is not None),
                         return_exceptions=True)


class TestRegressionRollback:
    def test_regressed_worker_rolls_back_and_rollout_aborts(self):
        async def scenario():
            good = ToyPipeline()
            w0, w1 = make_worker("w0", good), make_worker("w1")
            controller = FleetController([w0, w1], gate=fast_gate())
            bad = ToyPipeline(delay_s=0.2)   # ~10x the healthy batch wait
            controller.register_pipeline("v-bad", bad)
            await start_fleet([w0, w1])
            try:
                report = await controller.deploy("v-bad")
            finally:
                await stop_fleet([w0, w1])
            return good, w0, w1, report

        good, w0, w1, report = asyncio.run(scenario())
        assert report["ok"] is False
        assert report["aborted_at"] == "w0"
        assert report["rolled_back"] == ["w0"]
        assert report["workers"]["w0"]["action"] == "rolled-back"
        assert report["workers"]["w0"]["verdict"]["regressed"] is True
        # The regressed worker is back on the pipeline it had before the
        # swap — the very object, not a copy.
        assert w0.engine.pipeline is good
        assert w0.version == "v0"
        # The rollout never reached w1.
        assert report["workers"]["w1"] == {"action": "untouched"}
        assert w1.version == "v0"
        assert w1.engine.pipeline_generation == 0
        # Nothing was dropped while the bad deploy came and went (full
        # conservation needs a clean drain — bench_control asserts it).
        for worker in (w0, w1):
            counters = worker.engine.stats.counters()
            assert counters["dropped"] == 0
            assert counters["packets"] > 0

    def test_healthy_deploy_upgrades_whole_fleet(self):
        # The control case: same fleet, same gate, an honest pipeline —
        # the rollout must NOT trip the gate.
        async def scenario():
            w0, w1 = make_worker("w0"), make_worker("w1")
            controller = FleetController([w0, w1], gate=fast_gate())
            v1 = ToyPipeline()
            controller.register_pipeline("v1", v1)
            await start_fleet([w0, w1])
            try:
                report = await controller.deploy("v1")
            finally:
                await stop_fleet([w0, w1])
            return v1, w0, w1, report

        v1, w0, w1, report = asyncio.run(scenario())
        assert report["ok"] is True
        assert report["upgraded"] == ["w0", "w1"]
        assert w0.engine.pipeline is v1 and w1.engine.pipeline is v1
        assert w0.version == "v1" and w1.version == "v1"


class TestWorkerDeathMidRollout:
    def test_death_during_settle_aborts_and_spares_survivors(self):
        async def scenario():
            old0, old1 = ToyPipeline(), ToyPipeline()
            w0, w1 = make_worker("w0", old0), make_worker("w1", old1)
            # min_batches is unreachable, so the deploy is guaranteed to
            # still be settling on w0 when we kill it.
            controller = FleetController(
                [w0, w1], gate=fast_gate(min_batches=10**6, settle_s=30.0))
            controller.register_pipeline("v1", ToyPipeline())
            await start_fleet([w0, w1])
            deploy = asyncio.create_task(controller.deploy("v1"))
            await asyncio.sleep(0.3)      # deploy is inside w0's settle loop
            assert not deploy.done()
            w0.task.cancel()              # the "machine" dies mid-swap
            try:
                report = await deploy
            finally:
                await stop_fleet([w0, w1])
            return old0, old1, w0, w1, report

        old0, old1, w0, w1, report = asyncio.run(scenario())
        assert report["ok"] is False
        assert report["aborted_at"] == "w0"
        assert report["workers"]["w0"]["action"] == "rolled-back"
        assert report["workers"]["w0"]["reason"] == "worker died mid-swap"
        # The dead worker's engine was reverted (so a restart serves the
        # old version), and the survivor was never touched.
        assert w0.engine.pipeline is old0
        assert w0.version == "v0"
        assert report["workers"]["w1"] == {"action": "untouched"}
        assert w1.engine.pipeline is old1
        assert w1.version == "v0"
        assert w1.alive() is False or w1.task.cancelled()

    def test_death_before_swap_aborts_without_touching_the_worker(self):
        async def scenario():
            old = ToyPipeline()
            w0 = make_worker("w0", old)
            controller = FleetController([w0], gate=fast_gate())
            controller.register_pipeline("v1", ToyPipeline())
            w0.attach(asyncio.create_task(w0.engine.run(endless())))
            w0.task.cancel()
            await asyncio.gather(w0.task, return_exceptions=True)
            report = await controller.deploy("v1")
            return old, w0, report

        old, w0, report = asyncio.run(scenario())
        assert report["ok"] is False
        assert report["reason"] == "worker dead before swap"
        assert report["workers"]["w0"]["action"] == "aborted"
        assert w0.engine.pipeline is old          # never swapped
        assert w0.engine.pipeline_generation == 0


class TestConflictGuard:
    def test_concurrent_deploy_rejected_409_over_http(self):
        async def scenario():
            w0, w1 = make_worker("w0"), make_worker("w1")
            # Slow gate: the first deploy settles for ~1s (and ends in an
            # insufficient-traffic rollback, which is fine — it just has
            # to still be running when the rival requests arrive).
            controller = FleetController(
                [w0, w1], gate=fast_gate(min_batches=10**6, settle_s=1.0))
            controller.register_pipeline("v1", ToyPipeline())
            await start_fleet([w0, w1])
            server = ControlServer(controller)
            port = await server.start()
            client = ControlClient("127.0.0.1", port)
            try:
                first = asyncio.create_task(client.deploy("v1"))
                await asyncio.sleep(0.2)   # first deploy is mid-settle
                with pytest.raises(DeployConflict):
                    await client.deploy("v1")
                with pytest.raises(DeployConflict):
                    await client.rollback()
                with pytest.raises(DeployConflict):
                    await client.traffic_split({"w0": 2, "w1": 1})
                busy = (await client.fleet())["busy"]   # observation still works
                report = await first
            finally:
                await server.stop()
                await stop_fleet([w0, w1])
            return busy, report

        busy, report = asyncio.run(scenario())
        assert busy == "deploy:v1"
        # The rival requests did not corrupt the first rollout's outcome.
        assert report["ok"] is False
        assert "insufficient post-swap traffic" in report["reason"]

    def test_guard_releases_after_rollout(self):
        async def scenario():
            w0 = make_worker("w0")
            controller = FleetController([w0], gate=fast_gate())
            controller.register_pipeline("v1", ToyPipeline())
            await start_fleet([w0])
            try:
                first = await controller.deploy("v1")
                second = await controller.rollback()   # no conflict now
            finally:
                await stop_fleet([w0])
            return first, second

        first, second = asyncio.run(scenario())
        assert first["ok"] is True
        assert second == {"ok": True, "reverted": ["w0"], "skipped": []}


class TestValidation:
    def test_unknown_version_rejected(self):
        w0 = make_worker("w0")
        controller = FleetController([w0])
        with pytest.raises(ControlError, match="unknown version"):
            asyncio.run(controller.deploy("v-nope"))
        assert controller._busy is None

    def test_unknown_workers_rejected(self):
        controller = FleetController([make_worker("w0")])
        controller.register_pipeline("v1", ToyPipeline())
        with pytest.raises(ControlError, match="unknown workers"):
            asyncio.run(controller.deploy("v1", workers=["w9"]))
        with pytest.raises(ControlError, match="unknown workers"):
            controller.traffic_split({"w9": 2})

    def test_pipeline_must_predict(self):
        controller = FleetController([make_worker("w0")])
        with pytest.raises(ControlError, match="predict"):
            controller.register_pipeline("v1", object())

    def test_duplicate_worker_names_rejected(self):
        with pytest.raises(ControlError, match="duplicate"):
            FleetController([make_worker("w0"), make_worker("w0")])
