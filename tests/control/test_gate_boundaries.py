"""RegressionGate.compare edge windows.

The gate is the adaptation loop's only line of defence against serving
a bad retrain, so its behaviour on degenerate windows — empty, exactly
at ``min_batches``, all traffic dropped — must be pinned, not assumed.
"""

import pytest

from repro.control.telemetry import RegressionGate, window_metrics


def _counters(enqueued=0, dropped=0, batches=0, packets=0):
    return {"enqueued": enqueued, "dropped": dropped,
            "batches": batches, "packets": packets}


def _window(latencies=(), before=None, after=None):
    return window_metrics(list(latencies), before or _counters(),
                          after or _counters())


class TestEmptyWindows:
    def test_empty_pre_and_post_do_not_regress(self):
        """No traffic on either side: percentiles and drop rates are all
        zero, so nothing can trip — the verdict must be healthy, not a
        crash or a spurious rollback."""
        verdict = RegressionGate().compare(_window(), _window())
        assert verdict["regressed"] is False
        assert verdict["reasons"] == []

    def test_empty_window_metrics_are_zero(self):
        w = _window()
        assert w["latency_p50_s"] == 0.0
        assert w["latency_p99_s"] == 0.0
        assert w["latency_samples"] == 0
        assert w["drop_rate"] == 0.0

    def test_empty_pre_loaded_post_uses_absolute_floor(self):
        """With an empty pre window (pre p99 = 0) any post latency above
        the absolute floor is formally > factor * 0 — the floor is what
        keeps a cold-started worker from insta-rollback at micro
        latencies, and what still catches a genuinely slow pipeline."""
        gate = RegressionGate(latency_factor=3.0, latency_floor_s=2e-2)
        below_floor = _window([1e-3] * 5,
                              after=_counters(enqueued=5, packets=5,
                                              batches=5))
        assert not gate.compare(_window(), below_floor)["regressed"]
        above_floor = _window([5e-2] * 5,
                              after=_counters(enqueued=5, packets=5,
                                              batches=5))
        verdict = gate.compare(_window(), above_floor)
        assert verdict["regressed"]
        assert "latency" in verdict["reasons"][0]

    def test_loaded_pre_empty_post_does_not_regress(self):
        """Latency can only *improve* to an empty window; the missing-
        traffic case is the controller's settle timeout, not the gate's
        comparison."""
        pre = _window([1e-2] * 10, after=_counters(enqueued=10, packets=10,
                                                   batches=10))
        assert not RegressionGate().compare(pre, _window())["regressed"]


class TestMinBatchesBoundary:
    def test_exactly_min_batches_is_judgeable(self):
        """``min_batches`` is the controller's settle threshold; the gate
        itself must render a verdict from exactly that many samples."""
        gate = RegressionGate(min_batches=3)
        pre = _window([1e-2] * 3, after=_counters(enqueued=192, packets=192,
                                                  batches=3))
        post = _window([1e-2] * 3,
                       before=_counters(enqueued=192, packets=192, batches=3),
                       after=_counters(enqueued=384, packets=384, batches=6))
        assert post["batches"] == gate.min_batches
        assert not gate.compare(pre, post)["regressed"]

    def test_single_sample_windows_compare(self):
        gate = RegressionGate(min_batches=1)
        pre = _window([1e-2], after=_counters(enqueued=64, packets=64,
                                              batches=1))
        slow = _window([9e-2],
                       before=_counters(enqueued=64, packets=64, batches=1),
                       after=_counters(enqueued=128, packets=128, batches=2))
        assert gate.compare(pre, slow)["regressed"]

    def test_min_batches_validated(self):
        from repro.errors import ControlError

        with pytest.raises(ControlError):
            RegressionGate(min_batches=0)


class TestAllDroppedWindows:
    def test_post_window_all_dropped_regresses(self):
        """Every post-swap arrival shed: drop rate 1.0 vs 0.0 pre — the
        starkest regression the gate can see."""
        pre = _window([1e-2] * 5, after=_counters(enqueued=100, packets=100,
                                                  batches=5))
        post = _window([],
                       before=_counters(enqueued=100, packets=100, batches=5),
                       after=_counters(enqueued=200, packets=100,
                                       dropped=100, batches=5))
        assert post["drop_rate"] == 1.0
        verdict = RegressionGate().compare(pre, post)
        assert verdict["regressed"]
        assert "drop rate" in verdict["reasons"][0]

    def test_pre_window_all_dropped_forgives_post_drops(self):
        """A worker that was already shedding everything cannot regress
        on drops: rate went 1.0 -> 1.0."""
        pre = _window([], after=_counters(enqueued=100, dropped=100))
        post = _window([1e-3] * 4,
                       before=_counters(enqueued=100, dropped=100),
                       after=_counters(enqueued=200, dropped=200))
        assert pre["drop_rate"] == 1.0 and post["drop_rate"] == 1.0
        assert not RegressionGate().compare(pre, post)["regressed"]

    def test_drop_margin_is_exclusive(self):
        """Exactly +margin does not trip; just past it does."""
        gate = RegressionGate(drop_margin=0.01)
        pre = _window([1e-3],
                      after=_counters(enqueued=1000, packets=1000, batches=1))
        at_margin = _window(
            [1e-3],
            before=_counters(enqueued=1000, packets=1000, batches=1),
            after=_counters(enqueued=2000, packets=1990, dropped=10,
                            batches=2))
        assert at_margin["drop_rate"] == pytest.approx(0.01)
        assert not gate.compare(pre, at_margin)["regressed"]
        past_margin = _window(
            [1e-3],
            before=_counters(enqueued=1000, packets=1000, batches=1),
            after=_counters(enqueued=2000, packets=1980, dropped=20,
                            batches=2))
        assert gate.compare(pre, past_margin)["regressed"]
