"""Placement accounting: budgets, additive usage, loud failures."""

import pytest

from repro.errors import FabricError, PlacementError
from repro.fabric import (
    TierSpec,
    check_budget,
    headroom,
    placements_for,
    sum_usage,
    tier_budget,
)


class FakeApp:
    def __init__(self, name, tiers):
        self.name = name
        self.tiers = tiers


class TestTierBudget:
    def test_default_budget_is_the_backend_envelope(self):
        budget = tier_budget(TierSpec("leaf", count=1, device="tofino"))
        assert budget["mats"] == 32

    def test_override_expands_through_resource_limits(self):
        budget = tier_budget(TierSpec("leaf", count=1, device="tofino",
                                      resources={"mats": 8}))
        assert budget["mats"] == 8
        # Taurus rows/cols shorthand expands the same way it does for
        # single-switch constraints.
        budget = tier_budget(TierSpec("spine", count=1, device="taurus",
                                      resources={"rows": 4, "cols": 4}))
        assert budget == {"cus": 16, "mus": 16}

    def test_server_tier_has_no_budget(self):
        with pytest.raises(FabricError, match="no device"):
            tier_budget(TierSpec("server", count=4))


class TestBudgetAccounting:
    def test_sum_usage_is_additive(self):
        total = sum_usage([{"mats": 4, "entries": 8}, {"mats": 2}])
        assert total == {"mats": 6, "entries": 8}

    def test_exactly_at_budget_accepts(self):
        check_budget("leaf0", {"mats": 8}, {"mats": 8})

    def test_one_over_rejects_naming_device_and_resource(self):
        with pytest.raises(PlacementError) as err:
            check_budget("leaf0", {"mats": 9}, {"mats": 8})
        assert "leaf0" in str(err.value)
        assert "mats: 9 > limit 8" in str(err.value)

    def test_zero_budget_rejects_any_use(self):
        check_budget("leaf0", {"mats": 0}, {"mats": 0})
        with pytest.raises(PlacementError, match="mats"):
            check_budget("leaf0", {"mats": 1}, {"mats": 0})

    def test_headroom_fractions(self):
        room = headroom({"mats": 8}, {"mats": 32, "entries": 100})
        assert room["mats"] == pytest.approx(0.75)
        assert room["entries"] == 1.0
        assert headroom({"mats": 32}, {"mats": 32})["mats"] == 0.0
        assert headroom({}, {"mats": 0})["mats"] == 0.0


class TestPlacementsFor:
    def test_apps_land_on_their_tiers(self, pod):
        apps = [FakeApp("bd", ("leaf",)), FakeApp("tc", ("spine",)),
                FakeApp("both", ("leaf", "spine"))]
        by_tier = placements_for(pod, apps)
        assert [a.name for a in by_tier["leaf"]] == ["bd", "both"]
        assert [a.name for a in by_tier["spine"]] == ["tc", "both"]

    def test_server_placement_rejected(self, pod):
        with pytest.raises(FabricError, match="servers run no pipelines"):
            placements_for(pod, [FakeApp("bd", ("server",))])

    def test_unknown_tier_rejected(self, pod):
        with pytest.raises(FabricError, match="only has"):
            placements_for(pod, [FakeApp("bd", ("core",))])

    def test_no_tier_rejected(self, pod):
        with pytest.raises(FabricError, match="names no tiers"):
            placements_for(pod, [FakeApp("bd", ())])
