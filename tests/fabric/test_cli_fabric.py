"""The ``fabric`` CLI surface: plan, report, and the shared resolver."""

import json

import pytest

from repro.cli import build_fabric_parser, main


class TestFabricParser:
    def test_plan_requires_spec(self):
        with pytest.raises(SystemExit):
            build_fabric_parser("plan").parse_args([])

    def test_plan_defaults(self):
        args = build_fabric_parser("plan").parse_args(["--spec", "s.json"])
        assert args.shards == 1
        assert args.launcher is None
        assert args.max_retries == 0

    def test_unknown_launcher_rejected(self):
        with pytest.raises(SystemExit):
            build_fabric_parser("plan").parse_args(
                ["--spec", "s.json", "--launcher", "carrier"])

    def test_report_and_deploy_require_plan(self):
        for action in ("report", "deploy"):
            with pytest.raises(SystemExit):
                build_fabric_parser(action).parse_args([])


class TestFabricMainErrors:
    def test_missing_action_errors(self, capsys):
        assert main(["fabric"]) == 2
        assert "plan, report, deploy" in capsys.readouterr().err

    def test_unknown_action_errors(self, capsys):
        assert main(["fabric", "compile"]) == 2
        assert "plan, report, deploy" in capsys.readouterr().err

    def test_missing_spec_file_errors(self, capsys):
        assert main(["fabric", "plan", "--spec", "/nope/spec.json"]) == 2
        assert "no fabric spec" in capsys.readouterr().err

    def test_missing_plan_file_errors(self, capsys):
        assert main(["fabric", "report", "--plan", "/nope/plan.json"]) == 2
        assert "no fabric plan" in capsys.readouterr().err

    def test_bad_shards_errors(self, capsys):
        assert main(["fabric", "plan", "--spec", "s.json",
                     "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err


class TestSharedResolver:
    def test_compile_path_rejects_unknown_backend(self, capsys):
        assert main(["--app", "tc", "--target", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'nosuch'" in err
        assert "available" in err

    def test_compile_path_normalizes_case(self, capsys):
        # 'Tofino' resolves through the same registry the fabric uses.
        code = main(["--app", "tc", "--target", "Tofino",
                     "--algorithm", "decision_tree", "--budget", "2",
                     "--seed", "0"])
        assert code == 0
        assert "tofino" in capsys.readouterr().out

    def test_fabric_spec_rejects_unknown_device(self, tmp_path, capsys,
                                                make_leaf_spec):
        doc = make_leaf_spec().to_dict()
        doc["topology"]["tiers"][1]["device"] = "broadcom"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        assert main(["fabric", "plan", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "broadcom" in err
        assert "available" in err


class TestPlanReportRoundTrip:
    def test_plan_then_report(self, tmp_path, capsys, make_leaf_spec):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(make_leaf_spec().to_dict()))
        plan_path = tmp_path / "plan.json"

        assert main(["fabric", "plan", "--spec", str(spec_path),
                     "--out", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "leaf0:tc" in out
        assert f"plan written to {plan_path}" in out

        assert main(["fabric", "report", "--plan", str(plan_path)]) == 0
        assert "leaf1:tc" in capsys.readouterr().out

        assert main(["fabric", "report", "--plan", str(plan_path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert len(doc["devices"]) == 2
