"""Topology-aware dispatch: attachment math and router integration."""

import numpy as np
import pytest

from repro.errors import FabricError
from repro.fabric import (
    Demand,
    TierSpec,
    Topology,
    TrafficMatrix,
    ingress_tier,
    leaf_for_server,
    server_for_ip,
    tier_route_weights,
    topology_dispatch,
)
from repro.netsim.packet import PROTO_TCP, Packet
from repro.runtime import PacketFeatureExtractor
from repro.serving import AsyncStreamEngine, PipelineRouter, Route


def make_packet(src, dst, ts=0.0, size=100):
    return Packet(timestamp=ts, size=size, src_ip=src, dst_ip=dst,
                  src_port=1000, dst_port=2000, protocol=PROTO_TCP)


class TestAttachment:
    def test_server_for_ip_is_a_stable_modulo(self):
        assert server_for_ip(0, 8) == 0
        assert server_for_ip(13, 8) == 5
        assert server_for_ip(13, 8) == server_for_ip(13, 8)
        with pytest.raises(FabricError, match="n_servers"):
            server_for_ip(1, 0)

    def test_leaf_for_server_stripes(self):
        # Mirrors the topology expansion: server i -> leaf i % n_leaf.
        assert [leaf_for_server(i, 2) for i in range(4)] == [0, 1, 0, 1]
        with pytest.raises(FabricError, match="n_leaf"):
            leaf_for_server(0, 0)


class TestIngressTier:
    def test_same_leaf_traffic_stays_at_the_leaf(self, pod):
        # Servers 0 and 2 both stripe onto leaf0 (8 servers, 2 leaves).
        assert ingress_tier(pod, make_packet(src=0, dst=2)) == "leaf"

    def test_cross_leaf_traffic_climbs_to_the_spine(self, pod):
        # Server 0 -> leaf0, server 1 -> leaf1.
        assert ingress_tier(pod, make_packet(src=0, dst=1)) == "spine"

    def test_single_switch_tier_classifies_everything_at_the_leaf(self):
        leaf_only = Topology([
            TierSpec("server", count=4, ports=1),
            TierSpec("leaf", count=2, device="tofino", ports=4),
        ])
        assert ingress_tier(leaf_only, make_packet(src=0, dst=1)) == "leaf"

    def test_dispatch_closure_matches_ingress_tier(self, pod):
        dispatch = topology_dispatch(pod)
        for src, dst in [(0, 2), (0, 1), (3, 5), (4, 6)]:
            packet = make_packet(src=src, dst=dst)
            assert dispatch(packet) == ingress_tier(pod, packet)


class SizePipeline:
    def predict(self, X):
        return (np.asarray(X)[:, 0] > 500).astype(int)


class TestRouterDispatchMode:
    def build(self, pod):
        leaf = AsyncStreamEngine(SizePipeline(), PacketFeatureExtractor(),
                                 batch_size=8)
        spine = AsyncStreamEngine(SizePipeline(), PacketFeatureExtractor(),
                                  batch_size=8)
        router = PipelineRouter(
            [Route("leaf", leaf), Route("spine", spine)],
            dispatch=topology_dispatch(pod),
        )
        return leaf, spine, router

    def test_each_packet_reaches_exactly_one_route(self, pod):
        leaf, spine, router = self.build(pod)
        packets = [make_packet(src=i, dst=i + 2, ts=float(i))
                   for i in range(16)]          # same leaf: stays local
        packets += [make_packet(src=i, dst=i + 1, ts=float(16 + i))
                    for i in range(16)]         # cross leaf: spine
        results = router.process(packets)
        assert len(results["leaf"]) == 16
        assert len(results["spine"]) == 16
        assert leaf.stats.packets == 16
        assert spine.stats.packets == 16

    def test_unknown_route_name_skips_the_packet(self, pod):
        leaf = AsyncStreamEngine(SizePipeline(), PacketFeatureExtractor(),
                                 batch_size=8)
        router = PipelineRouter([Route("leaf", leaf)],
                                dispatch=lambda p: "nonexistent")
        results = router.process([make_packet(src=0, dst=2, ts=float(i))
                                  for i in range(8)])
        assert len(results["leaf"]) == 0
        assert leaf.stats.packets == 0

    def test_accept_still_applies_after_dispatch(self, pod):
        leaf = AsyncStreamEngine(SizePipeline(), PacketFeatureExtractor(),
                                 batch_size=8)
        router = PipelineRouter(
            [Route("leaf", leaf, accept=lambda p: p.size > 500)],
            dispatch=lambda p: "leaf",
        )
        packets = [make_packet(src=0, dst=2, ts=float(i),
                               size=600 if i % 2 else 100)
                   for i in range(16)]
        results = router.process(packets)
        assert len(results["leaf"]) == 8

    def test_without_dispatch_everything_fans_out(self, pod):
        leaf, spine, router = self.build(pod)
        broadcast = PipelineRouter(router.routes)  # no dispatch
        packets = [make_packet(src=0, dst=1, ts=float(i)) for i in range(8)]
        results = broadcast.process(packets)
        assert len(results["leaf"]) == 8
        assert len(results["spine"]) == 8


class TestTierRouteWeights:
    def test_weights_follow_boundary_load(self, pod):
        traffic = TrafficMatrix([
            Demand("bd", "server", "server", 24.0),   # 48G on server-leaf
            Demand("tc", "server", "spine", 8.0),     # 8G everywhere
        ])
        weights = tier_route_weights(traffic, pod)
        # leaf classifies 56G, spine 8G -> 7:1.
        assert weights == {"leaf": 7, "spine": 1}

    def test_unloaded_tier_gets_weight_one(self, pod):
        traffic = TrafficMatrix([Demand("bd", "server", "server", 24.0)])
        weights = tier_route_weights(traffic, pod)
        assert weights["spine"] == 1
        assert weights["leaf"] >= 1
