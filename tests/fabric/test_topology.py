"""Topology spec validation, deterministic expansion, wire format."""

import json

import pytest

from repro.errors import BackendError, FabricError
from repro.fabric import Device, Link, TierSpec, Topology, load_topology


class TestTierSpec:
    def test_unknown_tier_rejected(self):
        with pytest.raises(FabricError, match="unknown tier"):
            TierSpec("rack", count=2, device="tofino")

    @pytest.mark.parametrize("field,value", [
        ("count", 0), ("ports", 0), ("link_gbps", 0.0),
    ])
    def test_positive_scalars_enforced(self, field, value):
        kwargs = dict(tier="leaf", count=2, device="tofino", ports=4,
                      link_gbps=10.0)
        kwargs[field] = value
        with pytest.raises(FabricError):
            TierSpec(**kwargs)

    def test_server_tier_carries_no_device(self):
        with pytest.raises(FabricError, match="server tier"):
            TierSpec("server", count=4, device="tofino")

    def test_switch_tier_requires_device(self):
        with pytest.raises(FabricError, match="need a device"):
            TierSpec("leaf", count=2)

    def test_device_resolves_through_backend_registry(self):
        # Same resolver as the CLI: case-normalized, same error wording.
        assert TierSpec("leaf", count=1, device="Tofino").device == "tofino"
        with pytest.raises(BackendError, match="available"):
            TierSpec("leaf", count=1, device="broadcom")


class TestTopologyValidation:
    def test_needs_server_and_a_switch_tier(self):
        with pytest.raises(FabricError, match="switch tier"):
            Topology([TierSpec("server", count=4)])
        with pytest.raises(FabricError, match="server tier"):
            Topology([TierSpec("leaf", count=2, device="tofino")])

    def test_tiers_must_be_unique_and_ordered(self):
        with pytest.raises(FabricError, match="duplicate"):
            Topology([TierSpec("server", count=4),
                      TierSpec("server", count=4)])
        with pytest.raises(FabricError, match="bottom-up"):
            Topology([
                TierSpec("server", count=4, ports=2),
                TierSpec("spine", count=1, device="taurus"),
                TierSpec("leaf", count=2, device="tofino"),
            ])

    def test_spine_needs_leaf(self):
        with pytest.raises(FabricError, match="spine tier needs a leaf"):
            Topology([TierSpec("server", count=4, ports=2),
                      TierSpec("spine", count=1, device="taurus", ports=8)])

    def test_port_budget_enforced(self):
        # 2 leaves x 4 ports cannot carry ceil(8/2)=4 downlinks + 2 uplinks.
        with pytest.raises(FabricError, match="ports cannot carry"):
            Topology([
                TierSpec("server", count=8, ports=1),
                TierSpec("leaf", count=2, device="tofino", ports=4),
                TierSpec("spine", count=2, device="taurus", ports=4),
            ])


class TestExpansion:
    def test_devices_are_named_and_typed(self, make_pod):
        devices = make_pod().devices()
        assert devices == [
            Device("leaf0", "leaf", 0, "tofino"),
            Device("leaf1", "leaf", 1, "tofino"),
            Device("spine0", "spine", 0, "taurus"),
        ]

    def test_server_uplinks_stripe_across_leaves(self, make_pod):
        links = make_pod().links()
        assert Link("server0", "leaf0", 10.0) in links
        assert Link("server1", "leaf1", 10.0) in links
        assert Link("server2", "leaf0", 10.0) in links

    def test_switch_tiers_mesh_bipartite(self, make_pod):
        links = make_pod().links()
        assert Link("leaf0", "spine0", 40.0) in links
        assert Link("leaf1", "spine0", 40.0) in links

    def test_boundaries_aggregate_link_capacity(self, make_pod):
        boundaries = make_pod().boundaries()
        assert boundaries == [
            ("server-leaf", 8, 80.0),
            ("leaf-spine", 2, 80.0),
        ]

    def test_expansion_is_deterministic(self, make_pod):
        assert make_pod().links() == make_pod().links()
        assert make_pod().to_dict() == make_pod().to_dict()


class TestWireFormat:
    def test_round_trip(self, make_pod):
        pod = make_pod(leaf_resources={"mats": 16})
        clone = Topology.from_dict(pod.to_dict())
        assert clone.to_dict() == pod.to_dict()
        assert clone.tier("leaf").resources == {"mats": 16}

    def test_load_topology_json(self, tmp_path, make_pod):
        path = tmp_path / "pod.json"
        path.write_text(json.dumps(make_pod().to_dict()))
        assert load_topology(str(path)).devices() == make_pod().devices()

    def test_load_topology_missing_or_invalid(self, tmp_path):
        with pytest.raises(FabricError, match="no topology spec"):
            load_topology(str(tmp_path / "nope.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FabricError, match="not valid JSON"):
            load_topology(str(bad))

    def test_load_topology_yaml(self, tmp_path, make_pod):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "pod.yaml"
        path.write_text(yaml.safe_dump(make_pod().to_dict()))
        assert load_topology(str(path)).devices() == make_pod().devices()
