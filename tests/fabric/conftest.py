"""Shared fabric fixtures: a small pod topology and a fast compile spec.

The compile-bearing fixtures use the tiny ``tc`` split (120/40 rows) and
a budget of 2, so a full ``plan_fabric`` run costs a couple of seconds —
small enough that the determinism matrix can replan several times.
``make_pod`` / ``make_leaf_spec`` are factory fixtures (they return the
builder) for tests that need to vary resources or seeds.
"""

from __future__ import annotations

import pytest

from repro.distrib.runspec import DatasetRef
from repro.fabric import (
    Demand,
    FabricApp,
    FabricSpec,
    TierSpec,
    Topology,
    TrafficMatrix,
)


def _make_pod(leaf_resources: "dict | None" = None) -> Topology:
    """8 servers under 2 Tofino leaves under 1 Taurus spine."""
    return Topology([
        TierSpec("server", count=8, ports=1, link_gbps=10.0),
        TierSpec("leaf", count=2, device="tofino", ports=8, link_gbps=40.0,
                 resources=leaf_resources),
        TierSpec("spine", count=1, device="taurus", ports=4,
                 link_gbps=100.0),
    ])


def _make_leaf_spec(leaf_resources: "dict | None" = None,
                    seed: int = 0) -> FabricSpec:
    """Smallest compilable fabric: 4 servers, 2 leaves, one fast app."""
    topology = Topology([
        TierSpec("server", count=4, ports=1, link_gbps=10.0),
        TierSpec("leaf", count=2, device="tofino", ports=4, link_gbps=40.0,
                 resources=leaf_resources),
    ])
    apps = [FabricApp(
        "tc",
        DatasetRef.for_app("tc", n_train=120, n_test=40, seed=11),
        algorithms=("decision_tree",), tiers=("leaf",),
    )]
    traffic = TrafficMatrix([Demand("tc", "server", "server", 8.0)])
    return FabricSpec(topology, apps, traffic=traffic, budget=2, warmup=1,
                      train_epochs=2, seed=seed)


@pytest.fixture(scope="session")
def make_pod():
    return _make_pod


@pytest.fixture(scope="session")
def make_leaf_spec():
    return _make_leaf_spec


@pytest.fixture(scope="session")
def pod() -> Topology:
    return _make_pod()


@pytest.fixture(scope="session")
def leaf_spec() -> FabricSpec:
    return _make_leaf_spec()
