"""Deploying a plan: extractor matching, rebuilds, gated rollout."""

import pytest

from repro.datasets.botnet import generate_botnet_flows
from repro.errors import FabricError
from repro.fabric import (
    FabricPlan,
    deploy_plan,
    extractor_for,
    plan_fabric,
    rebuild_plan_pipelines,
)
from repro.runtime import FlowmarkerTracker, PacketFeatureExtractor


class TestExtractorFor:
    def test_bd_gets_the_stateful_flow_tracker(self):
        assert isinstance(extractor_for("bd"), FlowmarkerTracker)

    def test_tc_gets_per_packet_features(self):
        assert isinstance(extractor_for("tc"), PacketFeatureExtractor)

    def test_ad_is_not_packet_servable(self):
        with pytest.raises(FabricError, match="not packet-servable"):
            extractor_for("ad")


@pytest.fixture(scope="module")
def plan(leaf_spec):
    return plan_fabric(leaf_spec)


@pytest.fixture(scope="module")
def packets():
    flows = generate_botnet_flows(30, seed=1234)
    return sorted((p for f in flows for p in f), key=lambda p: p.timestamp)


class TestRebuild:
    def test_one_pipeline_per_tier_app(self, plan):
        pipelines = rebuild_plan_pipelines(plan)
        assert set(pipelines) == {"leaf:tc"}
        assert hasattr(pipelines["leaf:tc"], "predict")

    def test_rebuild_is_deterministic(self, plan, leaf_spec):
        import numpy as np

        dataset = leaf_spec.apps[0].dataset.materialize()
        first = rebuild_plan_pipelines(plan)["leaf:tc"]
        second = rebuild_plan_pipelines(plan)["leaf:tc"]
        preds_a = first.predict(dataset.test_x)
        preds_b = second.predict(dataset.test_x)
        assert np.array_equal(preds_a, preds_b)


class TestDeployPlan:
    def test_empty_trace_rejected(self, plan):
        with pytest.raises(FabricError, match="packet trace"):
            deploy_plan(plan, [])

    def test_rollout_upgrades_every_worker_losslessly(self, plan, packets):
        report = deploy_plan(plan, packets, rate=6000.0)
        assert report["ok"], report["tiers"]
        assert report["dropped"] == 0
        assert report["conserved"]
        assert set(report["workers"]) == {"leaf0:tc", "leaf1:tc"}
        for doc in report["workers"].values():
            assert doc["version"] == "plan-leaf-tc"
            assert doc["swaps"] == 1
            assert doc["packets"] > 0

    def test_unservable_app_in_plan_fails_loudly(self, plan):
        # An 'ad' placement cannot be rebuilt into a packet pipeline.
        doctored = FabricPlan.from_dict(plan.to_dict())
        doctored.devices[0]["app"] = "ad"
        with pytest.raises((FabricError, KeyError)):
            deploy_plan(doctored, [object()])
