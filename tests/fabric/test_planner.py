"""Planner determinism: seeds, byte-identical plans, chaos survival."""

import json

import pytest

from repro.distrib.launchers import SubprocessLauncher
from repro.distrib.worker import CHAOS_KILL_ENV
from repro.errors import FabricError, InfeasibleError, PlacementError
from repro.fabric import (
    FabricApp,
    FabricPlan,
    FabricSpec,
    fabric_model_seed,
    plan_fabric,
)
from repro.fabric.topology import TIER_ORDER


class TestFabricModelSeed:
    def test_same_inputs_same_seed(self):
        assert (fabric_model_seed(0, "leaf", 0)
                == fabric_model_seed(0, "leaf", 0))

    def test_tier_and_app_index_separate_streams(self):
        seeds = {
            fabric_model_seed(0, tier, index)
            for tier in ("leaf", "spine", "core")
            for index in range(4)
        }
        assert len(seeds) == 12  # no collisions across the small grid

    def test_root_seed_shifts_every_stream(self):
        assert (fabric_model_seed(0, "leaf", 0)
                != fabric_model_seed(1, "leaf", 0))

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            fabric_model_seed(0, "rack", 0)

    def test_device_identity_never_enters(self):
        # The seed namespace is (tier position, app index) only: the
        # same coordinates always map to the same derivation slot.
        for tier in TIER_ORDER[1:]:
            assert (fabric_model_seed(7, tier, 3)
                    == fabric_model_seed(7, tier, 3))


class TestFabricSpecValidation:
    def test_duplicate_app_names_rejected(self, make_leaf_spec):
        base = make_leaf_spec()
        with pytest.raises(FabricError, match="duplicate app names"):
            FabricSpec(base.topology, [base.apps[0], base.apps[0]],
                       budget=2)

    def test_empty_apps_rejected(self, make_leaf_spec):
        with pytest.raises(FabricError, match="at least one app"):
            FabricSpec(make_leaf_spec().topology, [])

    def test_bad_tier_reference_fails_at_construction(self, make_leaf_spec):
        base = make_leaf_spec()
        bad = FabricApp("tc", base.apps[0].dataset, tiers=("spine",))
        with pytest.raises(FabricError, match="only has"):
            FabricSpec(base.topology, [bad], budget=2)

    def test_bad_knobs_rejected(self, make_leaf_spec):
        base = make_leaf_spec()
        with pytest.raises(FabricError, match="budget"):
            FabricSpec(base.topology, base.apps, budget=0)
        with pytest.raises(FabricError, match="n_workers"):
            FabricSpec(base.topology, base.apps, budget=2, n_workers=0)

    def test_spec_round_trip(self, make_leaf_spec):
        spec = make_leaf_spec()
        clone = FabricSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()


@pytest.fixture(scope="module")
def reference_plan(leaf_spec):
    return plan_fabric(leaf_spec)


class TestPlanShape:
    def test_one_entry_per_device_app(self, reference_plan):
        keys = [(e["device"], e["app"]) for e in reference_plan.devices]
        assert keys == [("leaf0", "tc"), ("leaf1", "tc")]
        assert reference_plan.tiers() == ["leaf"]

    def test_replica_devices_land_on_identical_winners(self, reference_plan):
        left, right = reference_plan.devices
        # Same tier + same app index => same seed => same trajectory.
        assert left["seed"] == right["seed"]
        assert left["best_config"] == right["best_config"]
        assert left["objective"] == right["objective"]

    def test_placement_and_traffic_rollups_present(self, reference_plan):
        placed = reference_plan.placement["devices"]
        assert set(placed) == {"leaf0", "leaf1"}
        for doc in placed.values():
            assert all(v >= 0 for v in doc["headroom"].values())
        assert reference_plan.traffic["worst"]["boundary"] == "server-leaf"

    def test_device_entries_filter(self, reference_plan):
        assert len(reference_plan.device_entries("leaf0")) == 1
        assert len(reference_plan.device_entries()) == 2


class TestPlanDeterminism:
    def test_replan_is_byte_identical(self, leaf_spec, reference_plan):
        assert plan_fabric(leaf_spec).to_json() == reference_plan.to_json()

    def test_sharding_does_not_change_the_plan(self, leaf_spec,
                                               reference_plan, tmp_path):
        sharded = plan_fabric(leaf_spec, shards=2,
                              shard_dir=str(tmp_path / "shards"))
        assert sharded.to_json() == reference_plan.to_json()

    def test_chaos_kill_is_absorbed(self, leaf_spec, reference_plan,
                                    tmp_path, monkeypatch):
        # Kill the first worker attempt of unit-0000 mid-run; the retry
        # must reproduce the reference plan byte for byte.
        marker = tmp_path / "chaos-marker"
        monkeypatch.setenv(CHAOS_KILL_ENV, f"unit-0000.a0@{marker}")
        survived = plan_fabric(
            leaf_spec, shards=2, launcher=SubprocessLauncher(timeout=300),
            shard_dir=str(tmp_path / "shards"), max_retries=2,
        )
        assert marker.exists(), "chaos hook never fired"
        assert survived.to_json() == reference_plan.to_json()

    def test_save_load_round_trip(self, reference_plan, tmp_path):
        path = reference_plan.save(str(tmp_path / "plan.json"))
        clone = FabricPlan.load(path)
        assert clone.to_json() == reference_plan.to_json()
        # And the file itself is the canonical serialization.
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == reference_plan.to_json()

    def test_plan_json_is_pure_stdlib(self, reference_plan):
        # No numpy scalars may leak into the document.
        json.loads(reference_plan.to_json())

    def test_seed_change_changes_the_plan(self, reference_plan,
                                           make_leaf_spec):
        other = plan_fabric(make_leaf_spec(seed=1))
        assert other.to_json() != reference_plan.to_json()


class TestPlacementFailure:
    def test_over_budget_placement_names_device_and_resource(
            self, make_leaf_spec):
        # A 1-MAT leaf cannot host even the smallest tree; the compile
        # itself fails loudly before placement.
        spec = make_leaf_spec(leaf_resources={"mats": 1})
        with pytest.raises((PlacementError, InfeasibleError)) as err:
            plan_fabric(spec)
        assert "mats" in str(err.value) or "resources" in str(err.value)
