"""Traffic matrices: demand validation, oversubscription, route weights."""

import pytest

from repro.errors import FabricError
from repro.fabric import Demand, TierSpec, Topology, TrafficMatrix


class TestDemand:
    def test_validation(self):
        with pytest.raises(FabricError, match="app name"):
            Demand("", "server", "leaf", 1.0)
        with pytest.raises(FabricError, match="unknown tier"):
            Demand("bd", "server", "rack", 1.0)
        with pytest.raises(FabricError, match="gbps"):
            Demand("bd", "server", "leaf", 0.0)

    def test_round_trip(self):
        demand = Demand("bd", "server", "spine", 4.0)
        assert Demand.from_dict(demand.to_dict()) == demand


class TestOversubscription:
    def test_north_south_demand_crosses_each_boundary_once(self, make_pod):
        # 8 Gbit/s server->spine crosses server-leaf and leaf-spine.
        matrix = TrafficMatrix([Demand("tc", "server", "spine", 8.0)])
        rollup = matrix.oversubscription(make_pod())
        assert rollup["server-leaf"]["demand_gbps"] == 8.0
        assert rollup["leaf-spine"]["demand_gbps"] == 8.0
        # server-leaf: 8 x 10G links = 80G capacity.
        assert rollup["server-leaf"]["capacity_gbps"] == 80.0
        assert rollup["server-leaf"]["oversubscription"] == 0.1

    def test_east_west_hairpin_counts_twice_above_its_tier(self, make_pod):
        matrix = TrafficMatrix([Demand("bd", "server", "server", 24.0)])
        rollup = matrix.oversubscription(make_pod())
        assert rollup["server-leaf"]["demand_gbps"] == 48.0
        assert rollup["leaf-spine"]["demand_gbps"] == 0.0

    def test_worst_boundary_is_reported(self, make_pod):
        matrix = TrafficMatrix([
            Demand("bd", "server", "server", 24.0),
            Demand("tc", "server", "spine", 8.0),
        ])
        worst = matrix.worst_oversubscription(make_pod())
        assert worst["boundary"] == "server-leaf"
        assert worst["oversubscription"] == pytest.approx(56.0 / 80.0)

    def test_hairpin_at_top_tier_is_rejected(self, make_pod):
        matrix = TrafficMatrix([Demand("bd", "spine", "spine", 1.0)])
        with pytest.raises(FabricError, match="nowhere to climb"):
            matrix.oversubscription(make_pod())

    def test_demand_naming_absent_tier_is_rejected(self):
        leaf_only = Topology([
            TierSpec("server", count=4, ports=1),
            TierSpec("leaf", count=2, device="tofino", ports=4),
        ])
        matrix = TrafficMatrix([Demand("tc", "server", "spine", 1.0)])
        with pytest.raises(FabricError, match="not present"):
            matrix.oversubscription(leaf_only)


class TestWeights:
    def test_app_shares_sum_to_one(self):
        matrix = TrafficMatrix([
            Demand("bd", "server", "server", 30.0),
            Demand("tc", "server", "spine", 10.0),
        ])
        shares = matrix.app_shares()
        assert shares["bd"] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_route_weights_scale_from_lightest_app(self):
        matrix = TrafficMatrix([
            Demand("bd", "server", "server", 30.0),
            Demand("tc", "server", "spine", 10.0),
        ])
        assert matrix.route_weights() == {"bd": 3, "tc": 1}

    def test_round_trip(self):
        matrix = TrafficMatrix([Demand("bd", "server", "leaf", 2.0)])
        clone = TrafficMatrix.from_dict(matrix.to_dict())
        assert clone.to_dict() == matrix.to_dict()

    def test_empty_matrix_rejected(self):
        with pytest.raises(FabricError, match="at least one demand"):
            TrafficMatrix([])
