"""Model/search specs must pickle — the prerequisite that unlocks
process-pool execution end to end (the ROADMAP item this PR closes).

Loader closures pickle as their materialized dataset; caches drop and
re-create their lock; with both in place, ``generate(executor="process")``
produces the identical report to the thread path."""

import pickle

import numpy as np
import pytest

import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.bayesopt import ParallelEvaluator
from repro.bayesopt.optimizer import BayesianOptimizer
from repro.core.evaluator import ModelEvaluator
from repro.datasets import load_iot
from repro.errors import SpecificationError


def make_model(dataset, name="tc", algorithms=("decision_tree",)):
    @DataLoader
    def loader():
        return dataset

    return Model(
        name=name,
        optimization_metric=["f1"],
        algorithm=list(algorithms),
        data_loader=loader,
    )


@pytest.fixture(scope="module")
def dataset():
    return load_iot(n_train=100, n_test=40, seed=11)


class TestSpecPickling:
    def test_model_with_closure_loader_pickles(self, dataset):
        model = make_model(dataset)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.name == "tc"
        loaded = clone.load_dataset()
        assert np.array_equal(loaded.train_x, dataset.train_x)

    def test_unpickled_loader_cannot_be_called_raw(self, dataset):
        model = pickle.loads(pickle.dumps(make_model(dataset)))
        with pytest.raises(SpecificationError, match="materialized"):
            model.data_loader()  # the closure did not survive — by design

    def test_platform_spec_pickles(self, dataset):
        platform = Platforms.Tofino().constrain(resources={"mats": 16})
        platform.schedule(make_model(dataset))
        clone = pickle.loads(pickle.dumps(platform))
        assert clone.target == "tofino"
        assert [m.name for m in clone.models()] == ["tc"]

    def test_model_evaluator_pickles_and_evaluates(self, dataset):
        from repro.backends.tofino import TofinoBackend

        evaluator = ModelEvaluator(
            make_model(dataset), dataset, "decision_tree", TofinoBackend(),
            {"performance": {}, "resources": {}}, seed=0, train_epochs=3,
        )
        clone = pickle.loads(pickle.dumps(evaluator))
        config = {"max_depth": 3, "min_samples_leaf": 2}
        assert clone.evaluate(config).objective == evaluator.evaluate(config).objective


class TestProcessExecutorEndToEnd:
    def test_parallel_evaluator_process_pool_with_real_evaluator(self, dataset):
        """The full black box (train -> lower -> score) over a process
        pool, bit-identical to the serial trajectory."""
        from repro.backends.tofino import TofinoBackend
        from repro.core.designspace_builder import build_design_space

        backend = TofinoBackend()
        constraints = {"performance": {}, "resources": {}}
        evaluator = ModelEvaluator(
            make_model(dataset), dataset, "decision_tree", backend,
            constraints, seed=0, train_epochs=3,
        )
        space = build_design_space("decision_tree", dataset, backend, {})
        serial = BayesianOptimizer(
            space, evaluator.evaluate, warmup=2, seed=5
        ).run(4)
        engine = ParallelEvaluator(
            space, evaluator.evaluate, n_workers=2, warmup=2, seed=5,
            executor="process",
        )
        parallel = engine.run(4)
        assert [
            (e.config, e.objective) for e in serial.history
        ] == [(e.config, e.objective) for e in parallel.history]

    def test_generate_process_executor_matches_thread(self, dataset):
        def run(executor):
            platform = Platforms.Tofino()
            platform.schedule(make_model(dataset))
            return repro.generate(
                platform, budget=3, warmup=2, train_epochs=3, seed=0,
                n_workers=2, executor=executor,
            )

        threaded = run("thread")
        processed = run("process")
        assert threaded.best.best_config == processed.best.best_config
        assert threaded.best.objective == processed.best.objective

    def test_generate_rejects_unknown_executor(self, dataset):
        platform = Platforms.Tofino()
        platform.schedule(make_model(dataset))
        with pytest.raises(SpecificationError, match="executor"):
            repro.generate(platform, budget=2, executor="fiber")
