"""The load-bearing property: sharding changes wall-clock, never results.

Same seeds, shards ∈ {1, 2, 4}, all three launchers — every combination
must produce identical winners, identical merged Pareto fronts, and
identical merged cache contents; and the ``starts == 1`` runs must be
bit-identical to the serial ``repro.generate``.  The chaos matrix at the
bottom extends the claim through the fault-tolerance layer: injected
worker crashes absorbed by ``max_retries`` change nothing either,
because seeds derive from indices and never from attempts."""

import pytest

import repro
from repro.distrib import (
    DatasetRef,
    InProcessLauncher,
    ModelEntry,
    RunSpec,
    SubprocessLauncher,
    WorkQueueLauncher,
    run_sharded,
)
from repro.distrib.worker import CHAOS_FAIL_ENV, CHAOS_KILL_ENV

#: Two cheap families (no NN training) so the matrix stays fast.
def make_spec(starts=1, cache_dir=None):
    return RunSpec(
        target="tofino",
        models=[
            ModelEntry(
                name="tc",
                dataset=DatasetRef.for_app("tc", n_train=200, n_test=80, seed=11),
                algorithms=("decision_tree", "svm"),
            )
        ],
        budget=4,
        warmup=2,
        train_epochs=4,
        seed=0,
        starts=starts,
        cache_dir=cache_dir,
    )


def fingerprint(out):
    """Everything that must be invariant: winner, front, histories."""
    best = out.report.best
    front = [
        (tuple(sorted(e.config.items())), round(e.objective, 12),
         e.metrics.get("resource_mats"))
        for e in out.fronts["tc"]
    ]
    histories = {}
    for shard in out.shard_results:
        for unit in shard.units:
            key = (unit.model_index, unit.family_index, unit.start)
            histories[key] = [
                (tuple(sorted(e.config.items())), round(e.objective, 12))
                for e in unit.history
            ]
    return {
        "algorithm": best.algorithm,
        "config": tuple(sorted(best.best_config.items())),
        "objective": best.objective,
        "feasible": out.report.feasible,
        "front": front,
        "histories": histories,
    }


def cache_contents(out):
    if out.cache is None:
        return None
    return {
        key: round(e.objective, 12)
        for key, e in out.cache._entries.items()
    }


@pytest.fixture(scope="module")
def serial_report():
    spec = make_spec()
    platform = spec.build_platform()
    return repro.generate(
        platform, budget=spec.budget, warmup=spec.warmup,
        train_epochs=spec.train_epochs, seed=spec.seed,
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    spec = make_spec(cache_dir=str(tmp_path_factory.mktemp("ref-cache")))
    out = run_sharded(spec, shards=1)
    return fingerprint(out), cache_contents(out)


def launchers():
    return [
        ("inprocess", lambda: InProcessLauncher()),
        ("subprocess", lambda: SubprocessLauncher(timeout=300)),
        ("workqueue", lambda: WorkQueueLauncher(drainers=2, mode="thread",
                                                timeout=300)),
    ]


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize(
    "launcher_name,factory", launchers(), ids=[n for n, _ in launchers()]
)
def test_all_launchers_and_shard_counts_agree(
    shards, launcher_name, factory, reference, tmp_path
):
    ref_fp, ref_cache = reference
    spec = make_spec(cache_dir=str(tmp_path / "cache"))
    out = run_sharded(
        spec, shards=shards, launcher=factory(), shard_dir=str(tmp_path / "shards")
    )
    assert fingerprint(out) == ref_fp
    assert cache_contents(out) == ref_cache


def test_sharded_equals_serial_generate(serial_report, reference):
    ref_fp, _ = reference
    best = serial_report.best
    assert ref_fp["algorithm"] == best.algorithm
    assert ref_fp["config"] == tuple(sorted(best.best_config.items()))
    assert ref_fp["objective"] == best.objective
    assert ref_fp["feasible"] == serial_report.feasible
    # Family histories, not just the winner: the start-0 trajectories are
    # the serial ones, evaluation for evaluation.
    serial_histories = {
        algorithm: [
            (tuple(sorted(e.config.items())), round(e.objective, 12))
            for e in result.history
        ]
        for algorithm, result in best.candidate_results.items()
    }
    assert ref_fp["histories"][(0, 0, 0)] == serial_histories["decision_tree"]
    assert ref_fp["histories"][(0, 1, 0)] == serial_histories["svm"]


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_multistart_is_shard_count_invariant(shards, tmp_path):
    spec = make_spec(starts=2)
    out = run_sharded(spec, shards=shards, launcher=InProcessLauncher())
    best = out.report.best
    key = (tuple(sorted(best.best_config.items())), best.objective,
           best.algorithm)
    expected = run_sharded(make_spec(starts=2), shards=1)
    expected_best = expected.report.best
    assert key == (
        tuple(sorted(expected_best.best_config.items())),
        expected_best.objective, expected_best.algorithm,
    )
    assert fingerprint(out)["front"] == fingerprint(expected)["front"]


def test_multistart_never_loses_to_serial(serial_report):
    out = run_sharded(make_spec(starts=3), shards=3)
    assert out.report.best.objective >= serial_report.best.objective


def test_shard_granularity_matches_unit_granularity(reference, tmp_path):
    ref_fp, ref_cache = reference
    spec = make_spec(cache_dir=str(tmp_path / "cache"))
    out = run_sharded(spec, shards=2, granularity="shard")
    assert fingerprint(out) == ref_fp
    assert cache_contents(out) == ref_cache


# --------------------------------------------------------------------------- #
# the chaos matrix: crashes absorbed by retries change nothing
# --------------------------------------------------------------------------- #
def chaos_launchers():
    # (id, launcher factory, chaos env var).  The in-process and
    # thread-drainer cases must use FAIL (a hard kill would take the
    # test process down); the subprocess launcher takes a real hard
    # kill — os._exit between claim and complete.
    return [
        ("inprocess-fail", lambda: InProcessLauncher(), CHAOS_FAIL_ENV),
        ("subprocess-kill", lambda: SubprocessLauncher(timeout=300),
         CHAOS_KILL_ENV),
        ("workqueue-fail", lambda: WorkQueueLauncher(drainers=2, mode="thread",
                                                     timeout=300,
                                                     stale_after=None),
         CHAOS_FAIL_ENV),
    ]


@pytest.mark.parametrize(
    "chaos_id,factory,chaos_env", chaos_launchers(),
    ids=[i for i, _, _ in chaos_launchers()],
)
def test_injected_crashes_with_retries_are_invisible(
    chaos_id, factory, chaos_env, reference, tmp_path, monkeypatch
):
    """Unit granularity, one injected crash, max_retries=2: fronts,
    histories, and cache contents must match the crash-free reference
    (itself pinned to the serial ``generate``)."""
    ref_fp, ref_cache = reference
    marker = tmp_path / "chaos-marker"
    monkeypatch.setenv(chaos_env, f"unit-0001.a0@{marker}")
    spec = make_spec(cache_dir=str(tmp_path / "cache"))
    out = run_sharded(
        spec, shards=2, launcher=factory(),
        shard_dir=str(tmp_path / "shards"), max_retries=2,
    )
    assert marker.exists(), "the injected crash never fired"
    assert out.stats["fault_tolerance"]["retries"] >= 1
    assert fingerprint(out) == ref_fp
    assert cache_contents(out) == ref_cache
