"""Shard planning: unit enumeration, seed derivations, and the
round-robin partition — the determinism-critical plumbing."""

import numpy as np
import pytest

from repro.core.compiler import family_search_seed, model_search_seed
from repro.distrib import (
    DatasetRef,
    ModelEntry,
    RunSpec,
    ShardSpec,
    WorkUnit,
    plan_shards,
    plan_tasks,
    plan_units,
)
from repro.distrib.scheduler import unit_family_seed, unit_model_seed
from repro.errors import SpecificationError


def two_family_spec(starts=1):
    return RunSpec(
        target="tofino",
        models=[
            ModelEntry(
                name="tc",
                dataset=DatasetRef.for_app("tc", n_train=60, n_test=30, seed=11),
                algorithms=("decision_tree", "svm"),
            )
        ],
        budget=3,
        starts=starts,
        seed=0,
    )


class TestPlanUnits:
    def test_enumerates_families_in_candidate_order(self):
        units = plan_units(two_family_spec())
        assert [(u.algorithm, u.family_index, u.start) for u in units] == [
            ("decision_tree", 0, 0),
            ("svm", 1, 0),
        ]

    def test_multistart_expands_each_family(self):
        units = plan_units(two_family_spec(starts=3))
        assert len(units) == 6
        assert [(u.family_index, u.start) for u in units] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_datasets_dict_is_filled_and_reused(self):
        datasets = {}
        plan_units(two_family_spec(), datasets=datasets)
        assert set(datasets) == {0}
        marker = datasets[0]
        plan_units(two_family_spec(), datasets=datasets)
        assert datasets[0] is marker  # reused, not re-materialized


class TestSeeds:
    def test_start_zero_matches_serial_derivation(self):
        mseed = model_search_seed(0, 0)
        serial = family_search_seed(mseed, 1)
        distributed = unit_family_seed(mseed, 1, start=0)
        assert (
            serial.integers(0, 2**31, 8).tolist()
            == distributed.integers(0, 2**31, 8).tolist()
        )

    def test_starts_get_independent_streams(self):
        mseed = model_search_seed(0, 0)
        streams = [
            unit_family_seed(mseed, 0, start=s).integers(0, 2**31, 4).tolist()
            for s in range(4)
        ]
        assert len({tuple(s) for s in streams}) == 4

    def test_explicit_model_seed_override(self):
        spec = two_family_spec()
        assert unit_model_seed(spec, 0) == model_search_seed(0, 0)
        spec.models[0].seed = 777
        assert unit_model_seed(spec, 0) == 777

    def test_start_salts_cannot_collide_with_family_indices(self):
        # A start-1 stream of family 0 must differ from the start-0
        # stream of every plausible family index.
        mseed = model_search_seed(0, 0)
        salted = unit_family_seed(mseed, 0, start=1).integers(0, 2**31, 4).tolist()
        for family in range(64):
            base = unit_family_seed(mseed, family, start=0)
            assert base.integers(0, 2**31, 4).tolist() != salted


class TestPlanShards:
    def units(self, n):
        return [
            WorkUnit(model_index=0, model_name="m", family_index=i,
                     algorithm=f"f{i}", start=0)
            for i in range(n)
        ]

    def test_round_robin_partition(self):
        shards = plan_shards(self.units(5), 2)
        assert [u.family_index for u in shards[0].units] == [0, 2, 4]
        assert [u.family_index for u in shards[1].units] == [1, 3]
        assert all(s.n_shards == 2 for s in shards)

    def test_every_unit_assigned_exactly_once(self):
        units = self.units(7)
        shards = plan_shards(units, 3)
        seen = [u for s in shards for u in s.units]
        assert sorted(u.family_index for u in seen) == list(range(7))

    def test_clamps_to_unit_count(self):
        shards = plan_shards(self.units(2), 8)
        assert len(shards) == 2
        assert all(len(s.units) == 1 for s in shards)

    def test_errors(self):
        with pytest.raises(SpecificationError):
            plan_shards(self.units(2), 0)
        with pytest.raises(SpecificationError):
            plan_shards([], 2)

    def test_shard_spec_json_roundtrip(self):
        shard = plan_shards(self.units(3), 2)[0]
        again = ShardSpec.from_dict(shard.to_dict())
        assert again.index == shard.index
        assert again.units == shard.units


class TestPlanTasks:
    def units(self, n):
        return [
            WorkUnit(model_index=0, model_name="m", family_index=i,
                     algorithm=f"f{i}", start=0)
            for i in range(n)
        ]

    def test_unit_granularity_posts_one_task_per_unit(self):
        tasks = plan_tasks(self.units(5), 2)
        assert len(tasks) == 5
        assert [t.index for t in tasks] == list(range(5))
        assert all(len(t.units) == 1 for t in tasks)
        assert all(t.attempt == 0 for t in tasks)
        # Unit order is preserved: task i carries unit i.
        assert [t.units[0].family_index for t in tasks] == list(range(5))

    def test_unit_granularity_ignores_shard_count_for_task_count(self):
        # shards bounds concurrency, not the task list.
        assert len(plan_tasks(self.units(6), 2)) == 6
        assert len(plan_tasks(self.units(6), 100)) == 6

    def test_shard_granularity_delegates_to_plan_shards(self):
        tasks = plan_tasks(self.units(5), 2, granularity="shard")
        assert [t.to_dict() for t in tasks] == [
            s.to_dict() for s in plan_shards(self.units(5), 2)
        ]

    def test_errors(self):
        with pytest.raises(SpecificationError):
            plan_tasks(self.units(2), 2, granularity="molecule")
        with pytest.raises(SpecificationError):
            plan_tasks(self.units(2), 0)
        with pytest.raises(SpecificationError):
            plan_tasks([], 2)

    def test_attempt_survives_json_roundtrip(self):
        task = plan_tasks(self.units(2), 1)[1]
        task.attempt = 3
        again = ShardSpec.from_dict(task.to_dict())
        assert again.attempt == 3
        assert again.units == task.units
        # Old wire payloads without the field default to attempt 0.
        doc = task.to_dict()
        del doc["attempt"]
        assert ShardSpec.from_dict(doc).attempt == 0


def test_work_unit_roundtrip():
    unit = WorkUnit(model_index=2, model_name="ad", family_index=1,
                    algorithm="svm", start=3)
    assert WorkUnit.from_dict(unit.to_dict()) == unit


def test_plan_is_shard_count_invariant():
    units = plan_units(two_family_spec(starts=2))
    flat = {(u.model_index, u.family_index, u.start) for u in units}
    for n in (1, 2, 3, 4):
        shards = plan_shards(units, n)
        regrouped = {
            (u.model_index, u.family_index, u.start)
            for s in shards for u in s.units
        }
        assert regrouped == flat


def test_unit_seeds_are_integers_not_arrays():
    spec = two_family_spec()
    seed = unit_model_seed(spec, 0)
    assert isinstance(seed, int)
    assert isinstance(np.random.default_rng(seed), np.random.Generator)
