"""RunSpec / DatasetRef wire-format tests: JSON round-trips and
dataset materialization must be exact — the whole determinism story
rests on a worker rebuilding precisely what the driver described."""

import json

import numpy as np
import pytest

from repro.datasets import load_iot
from repro.datasets.base import Dataset
from repro.distrib import (
    DatasetRef,
    ModelEntry,
    RunSpec,
    load_dataset_npz,
    save_dataset_npz,
)
from repro.errors import SpecificationError


def tiny_dataset(seed=3):
    rng = np.random.default_rng(seed)
    return Dataset(
        train_x=rng.normal(size=(24, 4)),
        train_y=rng.integers(0, 2, 24),
        test_x=rng.normal(size=(10, 4)),
        test_y=rng.integers(0, 2, 10),
        feature_names=("a", "b", "c", "d"),
        name="tiny",
        metadata={"source": "synthetic", "n": 24},
    )


class TestDatasetRef:
    def test_app_ref_materializes_identically_to_direct_load(self):
        ref = DatasetRef.for_app("tc", n_train=60, n_test=30, seed=11)
        via_ref = ref.materialize()
        direct = load_iot(n_train=60, n_test=30, seed=11)
        assert np.array_equal(via_ref.train_x, direct.train_x)
        assert np.array_equal(via_ref.test_y, direct.test_y)

    def test_unknown_app_rejected(self):
        with pytest.raises(SpecificationError):
            DatasetRef.for_app("nope")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            DatasetRef(kind="carrier-pigeon").materialize()
        with pytest.raises(SpecificationError):
            DatasetRef.from_dict({"kind": "carrier-pigeon"})

    @pytest.mark.parametrize(
        "ref",
        [
            DatasetRef.for_app("ad", n_train=50, n_test=20, seed=7),
            DatasetRef.for_csv("train.csv", "test.csv", name="mine"),
            DatasetRef.for_npz("/some/where.npz"),
        ],
        ids=["app", "csv", "npz"],
    )
    def test_json_roundtrip(self, ref):
        doc = json.loads(json.dumps(ref.to_dict()))
        assert DatasetRef.from_dict(doc) == ref

    def test_npz_snapshot_roundtrip(self, tmp_path):
        dataset = tiny_dataset()
        path = str(tmp_path / "snap" / "tiny.npz")
        ref = DatasetRef.snapshot(dataset, path)
        loaded = ref.materialize()
        assert np.array_equal(loaded.train_x, dataset.train_x)
        assert np.array_equal(loaded.train_y, dataset.train_y)
        assert loaded.feature_names == dataset.feature_names
        assert loaded.name == "tiny"
        assert loaded.metadata == {"source": "synthetic", "n": 24}
        assert loaded.content_digest() == dataset.content_digest()

    def test_npz_helpers_are_inverse(self, tmp_path):
        dataset = tiny_dataset(seed=9)
        path = save_dataset_npz(dataset, str(tmp_path / "d.npz"))
        again = load_dataset_npz(path)
        assert np.array_equal(again.test_x, dataset.test_x)


def spec_of(**overrides):
    base = dict(
        target="tofino",
        models=[
            ModelEntry(
                name="tc",
                dataset=DatasetRef.for_app("tc", n_train=60, n_test=30, seed=11),
                algorithms=("decision_tree",),
            )
        ],
        budget=4,
        seed=0,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_json_roundtrip(self):
        spec = spec_of(starts=3, n_workers=2, batch_size=2,
                       performance={"latency": 800.0},
                       cache_dir="cache/")
        doc = json.loads(json.dumps(spec.to_dict()))
        assert RunSpec.from_dict(doc).to_dict() == spec.to_dict()

    def test_model_entry_roundtrip_keeps_explicit_seed(self):
        entry = ModelEntry(
            name="x",
            dataset=DatasetRef.for_app("ad", seed=7),
            metric="accuracy",
            algorithms=("dnn", "svm"),
            throughput=0.5,
            seed=123456,
        )
        again = ModelEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert again.seed == 123456
        assert again.algorithms == ("dnn", "svm")
        assert again.throughput == 0.5

    def test_validation(self):
        with pytest.raises(SpecificationError):
            RunSpec(target="tofino", models=[])
        with pytest.raises(SpecificationError):
            spec_of(budget=0)
        with pytest.raises(SpecificationError):
            spec_of(starts=0)
        with pytest.raises(SpecificationError):
            spec_of(n_workers=0)
        with pytest.raises(SpecificationError):
            ModelEntry(name="x", dataset=DatasetRef.for_app("ad"), metric="mse")
        duplicate = ModelEntry(
            name="tc", dataset=DatasetRef.for_app("tc", seed=1)
        )
        with pytest.raises(SpecificationError):
            spec_of(models=[duplicate, duplicate])

    def test_build_platform_schedules_models_in_order(self):
        spec = RunSpec(
            target="taurus",
            models=[
                ModelEntry(name="one",
                           dataset=DatasetRef.for_app("ad", n_train=50,
                                                      n_test=20, seed=7)),
                ModelEntry(name="two",
                           dataset=DatasetRef.for_app("tc", n_train=50,
                                                      n_test=20, seed=11)),
            ],
            budget=2,
        )
        platform = spec.build_platform()
        assert [m.name for m in platform.models()] == ["one", "two"]

    def test_build_platform_applies_constraints(self):
        spec = spec_of(performance={"latency": 750.0}, resources={"mats": 12})
        platform = spec.build_platform()
        constraints = platform.constraints()
        assert constraints["performance"]["latency"] == 750.0
        assert constraints["resources"]["mats"] == 12
