"""Merge-layer unit tests: Pareto re-filtering, spill folding, stats
aggregation, and the coverage validation that guards a bad partition."""

import pytest

from repro.bayesopt.cache import EvaluationCache, config_key
from repro.bayesopt.results import Evaluation
from repro.distrib import (
    DatasetRef,
    ModelEntry,
    RunSpec,
    aggregate_stats,
    merge_fronts,
    merge_results,
    merge_spills,
)
from repro.distrib.merge import merge_shard_spill_dirs
from repro.distrib.worker import ShardResult, UnitResult
from repro.errors import DistributionError


def ev(objective, mats, **config):
    return Evaluation(
        config=config or {"x": objective},
        objective=objective,
        feasible=True,
        metrics={"resource_mats": mats},
    )


class TestMergeFronts:
    def test_refilters_across_shards(self):
        # Shard A's front point (0.8, 10 mats) is dominated by shard B's
        # (0.9, 8 mats): the merged front must drop it.
        front_a = [ev(0.8, 10, x=1), ev(0.5, 3, x=2)]
        front_b = [ev(0.9, 8, x=3)]
        merged = merge_fronts([front_a, front_b], "resource_mats")
        kept = {e.config["x"] for e in merged}
        assert kept == {2, 3}

    def test_union_of_fronts_is_not_a_front(self):
        # Both inputs are valid fronts on their own; the union is not.
        a = [ev(0.7, 5, x=1)]
        b = [ev(0.7, 4, x=2)]
        merged = merge_fronts([a, b], "resource_mats")
        assert [e.config["x"] for e in merged] == [2]

    def test_sorted_by_resource_then_objective(self):
        merged = merge_fronts(
            [[ev(0.5, 3, x=1), ev(0.9, 9, x=2)], [ev(0.7, 6, x=3)]],
            "resource_mats",
        )
        assert [e.config["x"] for e in merged] == [1, 3, 2]

    def test_duplicate_points_deduplicated(self):
        twin_a = ev(0.8, 5, x=1)
        twin_b = ev(0.8, 5, x=1)
        merged = merge_fronts([[twin_a], [twin_b]], "resource_mats")
        assert len(merged) == 1

    def test_infeasible_and_unmetered_points_excluded(self):
        bad = Evaluation(config={"x": 1}, objective=0.99, feasible=False,
                         metrics={"resource_mats": 1})
        unmetered = Evaluation(config={"x": 2}, objective=0.99, feasible=True)
        merged = merge_fronts([[bad, unmetered, ev(0.5, 5, x=3)]], "resource_mats")
        assert [e.config["x"] for e in merged] == [3]

    def test_empty(self):
        assert merge_fronts([], "resource_mats") == []
        assert merge_fronts([[]], "resource_mats") == []


class TestMergeSpills:
    def spill(self, tmp_path, name, entries):
        cache = EvaluationCache()
        for config, objective in entries:
            cache.put(config, Evaluation(config=config, objective=objective))
        path = str(tmp_path / name)
        cache.save(path)
        return path

    def test_last_writer_wins_in_shard_order(self, tmp_path):
        a = self.spill(tmp_path, "a.json", [({"x": 1}, 0.1), ({"x": 2}, 0.2)])
        b = self.spill(tmp_path, "b.json", [({"x": 1}, 0.9)])
        merged = merge_spills([a, b], str(tmp_path / "merged.json"))
        assert merged.get({"x": 1}).objective == 0.9   # b loaded last, wins
        assert merged.get({"x": 2}).objective == 0.2
        reversed_merge = merge_spills([b, a], str(tmp_path / "merged2.json"))
        assert reversed_merge.get({"x": 1}).objective == 0.1

    def test_merged_spill_is_loadable(self, tmp_path):
        a = self.spill(tmp_path, "a.json", [({"x": 1}, 0.5)])
        out = str(tmp_path / "merged.json")
        merge_spills([a], out)
        assert len(EvaluationCache(path=out)) == 1

    def test_shard_spill_dirs_grouped_by_basename(self, tmp_path):
        shard0 = tmp_path / "s0"
        shard1 = tmp_path / "s1"
        shard0.mkdir()
        shard1.mkdir()
        self.spill(shard0, "fam_a.json", [({"x": 1}, 0.1)])
        self.spill(shard1, "fam_a.json", [({"x": 1}, 0.7), ({"x": 9}, 0.9)])
        self.spill(shard1, "fam_b.json", [({"y": 1}, 0.3)])
        out = tmp_path / "merged"
        out.mkdir()
        union = merge_shard_spill_dirs([str(shard0), str(shard1)], str(out))
        assert sorted(p.name for p in out.iterdir()) == ["fam_a.json", "fam_b.json"]
        assert union.get({"x": 1}).objective == 0.7  # shard 1 wrote last
        assert len(union) == 3

    def test_no_spills_returns_none(self, tmp_path):
        assert merge_shard_spill_dirs([None, str(tmp_path / "nope")],
                                      str(tmp_path)) is None


class TestOrphanTmpSweep:
    """A writer SIGKILLed between tmp-create and os.replace leaves
    ``<spill>.tmp.<pid>.<tid>`` litter; merge time must sweep it."""

    def plant_orphan(self, directory, name="fam_a.json.tmp.99999.140001"):
        orphan = directory / name
        orphan.write_text('{"half": "written')   # torn JSON, never renamed
        return orphan

    def spill(self, tmp_path, name, entries):
        cache = EvaluationCache()
        for config, objective in entries:
            cache.put(config, Evaluation(config=config, objective=objective))
        path = str(tmp_path / name)
        cache.save(path)
        return path

    def test_merge_spills_sweeps_input_and_output_dirs(self, tmp_path):
        spills = tmp_path / "spills"
        out = tmp_path / "out"
        spills.mkdir()
        out.mkdir()
        a = self.spill(spills, "a.json", [({"x": 1}, 0.5)])
        in_orphan = self.plant_orphan(spills, "a.json.tmp.4242.1")
        out_orphan = self.plant_orphan(out, "merged.json.tmp.4242.2")
        merged = merge_spills([a], str(out / "merged.json"))
        assert not in_orphan.exists()
        assert not out_orphan.exists()
        assert merged.get({"x": 1}).objective == 0.5  # merge unaffected

    def test_shard_dir_merge_sweeps_planted_orphan(self, tmp_path):
        shard0 = tmp_path / "s0"
        shard0.mkdir()
        self.spill(shard0, "fam_a.json", [({"x": 1}, 0.1)])
        orphan = self.plant_orphan(shard0)
        out = tmp_path / "merged"
        out.mkdir()
        union = merge_shard_spill_dirs([str(shard0)], str(out))
        assert not orphan.exists()
        assert union.get({"x": 1}).objective == 0.1
        # The real spill survived the sweep.
        assert (shard0 / "fam_a.json").exists()

    def test_sweep_spares_live_files_and_respects_age(self, tmp_path):
        import os
        import time

        from repro.fsio import sweep_orphan_tmp

        keep = tmp_path / "fam.json"           # real artifact
        keep.write_text("{}")
        lookalike = tmp_path / "fam.json.tmp.x.1"   # pid is not digits
        lookalike.write_text("")
        fresh = tmp_path / "fam.json.tmp.1.2"
        fresh.write_text("")
        old = tmp_path / "fam.json.tmp.3.4"
        old.write_text("")
        past = time.time() - 3600
        os.utime(old, (past, past))
        removed = sweep_orphan_tmp(str(tmp_path), older_than_s=60.0)
        assert removed == [str(old)]
        assert keep.exists() and lookalike.exists() and fresh.exists()
        # older_than_s=0 takes the fresh one too.
        assert sweep_orphan_tmp(str(tmp_path)) == [str(fresh)]

    def test_sweep_missing_dir_is_noop(self, tmp_path):
        from repro.fsio import sweep_orphan_tmp

        assert sweep_orphan_tmp(str(tmp_path / "nope")) == []
        assert sweep_orphan_tmp("") == []


def unit(model=0, family=0, start=0, n=3, stats=None):
    return UnitResult(
        model_index=model, model_name="m", family_index=family,
        algorithm=f"f{family}", start=start,
        history=[ev(0.1 * i, 5, x=i) for i in range(n)],
        stats=stats,
    )


class TestAggregateStats:
    def test_sums_engine_counters_and_tracks_critical_path(self):
        shards = [
            ShardResult(index=0, n_shards=2, elapsed_s=2.0,
                        units=[unit(stats={"evaluated": 3, "rounds": 1})]),
            ShardResult(index=1, n_shards=2, elapsed_s=5.0,
                        units=[unit(family=1, stats={"evaluated": 2}),
                               unit(family=2)]),
        ]
        stats = aggregate_stats(shards)
        assert stats["shards"] == 2
        assert stats["units"] == 3
        assert stats["engine"] == {"evaluated": 5, "rounds": 1}
        assert stats["critical_path_s"] == 5.0
        assert stats["total_work_s"] == 7.0
        assert stats["per_shard"][1]["evaluations"] == 6


class TestMergeResultsValidation:
    def spec(self):
        return RunSpec(
            target="tofino",
            models=[
                ModelEntry(
                    name="tc",
                    dataset=DatasetRef.for_app("tc", n_train=60, n_test=30,
                                               seed=11),
                    algorithms=("decision_tree",),
                )
            ],
            budget=3,
            seed=0,
        )

    def test_duplicate_unit_rejected(self):
        shards = [
            ShardResult(index=0, n_shards=2, units=[unit()]),
            ShardResult(index=1, n_shards=2, units=[unit()]),
        ]
        with pytest.raises(DistributionError, match="two shards"):
            merge_results(self.spec(), shards)

    def test_short_history_rejected(self):
        shards = [ShardResult(index=0, n_shards=1, units=[unit(n=2)])]
        with pytest.raises(DistributionError, match="expected 3"):
            merge_results(self.spec(), shards)

    def test_missing_and_unplanned_units_rejected(self):
        # The only planned unit (0, 0, 0) is absent and a unit for a
        # nonexistent model 5 shows up: both must be named in the error.
        shards = [ShardResult(index=0, n_shards=1,
                              units=[unit(model=5, n=3)])]
        with pytest.raises(DistributionError, match="do not match the plan"):
            merge_results(self.spec(), shards)

    def test_dropped_family_is_detected(self):
        # A worker silently returning no units at all (e.g. a malformed
        # result JSON defaulting to units=[]) must not merge quietly.
        shards = [ShardResult(index=0, n_shards=1, units=[])]
        with pytest.raises(DistributionError, match="missing units"):
            merge_results(self.spec(), shards)

    def test_wrong_algorithm_rejected(self):
        # Right (model, family, start) key, wrong algorithm name: the
        # plan knows family 0 is decision_tree, the fake says 'f0'.
        shards = [ShardResult(index=0, n_shards=1, units=[unit(n=3)])]
        with pytest.raises(DistributionError, match="wrong algorithm"):
            merge_results(self.spec(), shards)


def test_config_key_shared_with_cache():
    """Merged-cache identity uses the same canonical key as the engine."""
    assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})
