"""Fault-tolerance layer tests: heartbeats, the stale-claim reaper,
attempt-namespaced retries, and the driver's keep-survivors-retry-failed
loop — including crash injection at every worker boundary.

The scenarios mirror the ways real fleets die: a worker that records a
failure (``failed/`` entry), a worker SIGKILLed between claim and
complete (orphaned claim, recovered by the reaper), drainers that all
exit with work outstanding (recovered by the driver's re-post), and two
reapers racing the same stale claim (exactly one wins)."""

import os
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.distrib import (
    DatasetRef,
    InProcessLauncher,
    ModelEntry,
    ReaperThread,
    RunSpec,
    SubprocessLauncher,
    TaskFailure,
    WorkQueue,
    WorkQueueLauncher,
    plan_tasks,
    plan_units,
    run_sharded,
    task_name,
)
from repro.distrib.scheduler import ShardSpec
from repro.distrib.worker import (
    CHAOS_FAIL_ENV,
    CHAOS_KILL_ENV,
    ClaimHeartbeat,
    drain,
    maybe_inject_chaos,
)
from repro.errors import DistributionError


def tiny_spec(**overrides):
    base = dict(
        target="tofino",
        models=[
            ModelEntry(
                name="tc",
                dataset=DatasetRef.for_app("tc", n_train=60, n_test=30, seed=11),
                algorithms=("decision_tree", "svm"),
            )
        ],
        budget=2,
        warmup=1,
        train_epochs=3,
        seed=0,
    )
    base.update(overrides)
    return RunSpec(**base)


def age_claim(queue, name, seconds=3600):
    """Backdate a claim's mtime, simulating a stopped heartbeat."""
    path = os.path.join(queue.root, "claimed", f"{name}.json")
    old = time.time() - seconds
    os.utime(path, (old, old))


def chaos_fail_once(monkeypatch, tmp_path, target):
    marker = str(tmp_path / "chaos-marker")
    monkeypatch.setenv(CHAOS_FAIL_ENV, f"{target}@{marker}")
    return marker


# --------------------------------------------------------------------------- #
# queue primitives: touch / stale_claims / discard
# --------------------------------------------------------------------------- #
class TestHeartbeatPrimitives:
    def test_touch_refreshes_claim_mtime(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        age_claim(queue, "t")
        assert queue.stale_claims(60.0) == ["t"]
        assert queue.touch("t") is True
        assert queue.stale_claims(60.0) == []

    def test_touch_missing_claim_returns_false(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        assert queue.touch("ghost") is False

    def test_stale_claims_only_lists_old_claims(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        for name in ("fresh", "old"):
            queue.post(name, {})
            queue.claim()
        age_claim(queue, "old")
        assert queue.stale_claims(60.0) == ["old"]

    def test_claim_heartbeat_touches_while_running(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {})
        queue.claim()
        age_claim(queue, "t")
        with ClaimHeartbeat(queue, "t", interval=0.05):
            time.sleep(0.3)
            assert queue.stale_claims(60.0) == []

    def test_claim_heartbeat_zero_interval_is_noop(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {})
        queue.claim()
        age_claim(queue, "t")
        with ClaimHeartbeat(queue, "t", interval=0.0):
            time.sleep(0.1)
        assert queue.stale_claims(60.0) == ["t"]

    def test_discard_removes_pending_and_claimed(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("pending", {})
        queue.post("claimed", {})
        # claim() takes names in sorted order: "claimed" first.
        queue.claim()
        assert queue.discard("pending") is True
        assert queue.discard("claimed") is True
        assert queue.discard("ghost") is False
        assert queue.pending() == []
        assert queue.claimed() == []

    def test_names_tolerate_deleted_queue_dir(self, tmp_path):
        # A lingering drainer may outlive a finished run's scratch dir;
        # it must idle out, not crash.
        queue = WorkQueue(str(tmp_path / "q"))
        import shutil

        shutil.rmtree(str(tmp_path / "q"))
        assert queue.pending() == []
        assert queue.claim() is None


# --------------------------------------------------------------------------- #
# requeue_stale races (satellite: exactly one of two drivers wins)
# --------------------------------------------------------------------------- #
class TestRequeueRaces:
    def test_two_reapers_racing_one_claim_exactly_one_wins(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        wins = []
        for round_index in range(10):
            name = f"t{round_index}"
            queue.post(name, {})
            queue.claim()
            barrier = threading.Barrier(2)

            def racer():
                barrier.wait()
                if queue.requeue_stale(name):
                    wins.append(name)

            threads = [threading.Thread(target=racer) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            queue.claim()  # re-own for the next round
        assert len(wins) == 10  # one winner per round, never zero or two

    def test_completion_beats_requeue(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        name, _ = queue.claim()
        queue.complete(name, {"done": True})
        assert queue.requeue_stale("t") is False
        assert queue.result_for("t") == {"done": True}

    def test_two_reaper_threads_share_a_queue_without_double_reaping(
        self, tmp_path
    ):
        queue = WorkQueue(str(tmp_path))
        for i in range(6):
            queue.post(f"t{i}", {})
            queue.claim()
            age_claim(queue, f"t{i}")
        reapers = [ReaperThread(queue, stale_after=0.1, poll=0.02)
                   for _ in range(2)]
        for reaper in reapers:
            reaper.start()
        deadline = time.monotonic() + 5
        while len(queue.pending()) < 6 and time.monotonic() < deadline:
            time.sleep(0.02)
        for reaper in reapers:
            reaper.stop()
            reaper.join(timeout=2)
        assert sorted(queue.pending()) == [f"t{i}" for i in range(6)]
        # requeue_stale is atomic: the reapers' combined trophies hold
        # each name exactly once.
        combined = reapers[0].reaped + reapers[1].reaped
        assert sorted(combined) == [f"t{i}" for i in range(6)]


# --------------------------------------------------------------------------- #
# the reaper (satellite: requeue_stale finally has a caller)
# --------------------------------------------------------------------------- #
class TestReaper:
    def test_reaper_requeues_orphaned_claim(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        age_claim(queue, "t")
        reaper = ReaperThread(queue, stale_after=0.1, poll=0.02)
        reaper.start()
        deadline = time.monotonic() + 5
        while not queue.pending() and time.monotonic() < deadline:
            time.sleep(0.02)
        reaper.stop()
        reaper.join(timeout=2)
        assert queue.pending() == ["t"]
        assert queue.claimed() == []
        assert reaper.reaped == ["t"]

    def test_reaper_leaves_heartbeating_claims_alone(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        reaper = ReaperThread(queue, stale_after=0.3, poll=0.05)
        reaper.start()
        with ClaimHeartbeat(queue, "t", interval=0.05):
            time.sleep(0.8)  # several stale windows pass, heartbeat wins
        reaper.stop()
        reaper.join(timeout=2)
        assert queue.claimed() == ["t"]
        assert reaper.reaped == []

    def test_reaper_rejects_nonpositive_stale_after(self, tmp_path):
        with pytest.raises(DistributionError):
            ReaperThread(WorkQueue(str(tmp_path)), stale_after=0)

    def test_launcher_rejects_stale_after_close_to_heartbeat(self):
        with pytest.raises(DistributionError, match="heartbeat"):
            WorkQueueLauncher(stale_after=1.0, heartbeat=0.9)

    def test_launcher_rejects_disabled_heartbeat_with_reaper_on(self):
        # heartbeat=0 + an active reaper would reap every long-running
        # healthy claim; only legal once the reaper is off.
        with pytest.raises(DistributionError, match="heartbeat"):
            WorkQueueLauncher(heartbeat=0.0)
        WorkQueueLauncher(heartbeat=0.0, stale_after=None)  # fine

    def test_default_drainer_count_follows_width_hint(self, tmp_path):
        # drainers=None: the driver's `shards` knob bounds drainer
        # concurrency like every other launcher.  Functional check:
        # a width-2 launch with default drainers completes both units.
        spec = tiny_spec()
        tasks = plan_tasks(plan_units(spec), 2)
        outcomes = WorkQueueLauncher(
            mode="thread", timeout=120, stale_after=None,
        ).launch(spec, tasks, str(tmp_path), width=2)
        assert len(outcomes) == 2
        assert not any(isinstance(o, TaskFailure) for o in outcomes)


# --------------------------------------------------------------------------- #
# attempt namespacing (satellite: failed/<name> masking the retry)
# --------------------------------------------------------------------------- #
class TestAttemptNamespacing:
    def test_task_names_carry_index_and_attempt(self):
        task = ShardSpec(index=3, n_shards=8, units=[])
        assert task_name(task) == "unit-0003.a0"
        task.attempt = 2
        assert task_name(task) == "unit-0003.a2"

    def test_stale_failure_does_not_mask_the_retry(self, tmp_path):
        # Regression: attempt 0 failed; the retry posts attempt 1.  The
        # driver waits on the *new* name, so the old failed/ entry can
        # neither abort the wait nor double-count the task.
        queue = WorkQueue(str(tmp_path))
        queue.post("unit-0000.a0", {"x": 1})
        queue.claim()
        queue.fail("unit-0000.a0", "first attempt crashed")
        queue.post("unit-0000.a1", {"x": 1})
        queue.claim()
        queue.complete("unit-0000.a1", {"done": True})
        results, failures = queue.wait_resolved(["unit-0000.a1"], timeout=5)
        assert results == {"unit-0000.a1": {"done": True}}
        assert failures == {}

    def test_wait_resolved_reports_failures_instead_of_raising(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        for name in ("unit-0000.a0", "unit-0001.a0"):
            queue.post(name, {})
        queue.claim()
        queue.complete("unit-0000.a0", {"ok": True})
        queue.claim()
        queue.fail("unit-0001.a0", "boom")
        results, failures = queue.wait_resolved(
            ["unit-0000.a0", "unit-0001.a0"], timeout=5
        )
        assert set(results) == {"unit-0000.a0"}
        assert set(failures) == {"unit-0001.a0"}
        assert failures["unit-0001.a0"]["error"] == "boom"
        assert failures["unit-0001.a0"]["worker"]  # host:pid stamped

    def test_wait_resolved_prefers_result_over_late_failure(self, tmp_path):
        # A requeued task can end up with both verdicts (the slow
        # original owner records a failure while the requeued copy
        # completes); the work is done, so the result wins.
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {})
        queue.claim()
        queue.fail("t", "slow original owner")  # failure lands first

        def late_completion():
            time.sleep(0.2)
            queue._write_atomic("results", "t", {"done": True})
            queue.post("u", {})
            queue.claim()
            queue.complete("u", {"done": True})

        writer = threading.Thread(target=late_completion)
        writer.start()
        try:
            # "u" stays unresolved until the writer finishes, so the
            # wait keeps polling and sees t's late result upgrade.
            results, failures = queue.wait_resolved(["t", "u"], timeout=5)
        finally:
            writer.join()
        assert results == {"t": {"done": True}, "u": {"done": True}}
        assert failures == {}

    def test_wait_resolved_synthesizes_failures_when_drainers_die(
        self, tmp_path
    ):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {})
        results, failures = queue.wait_resolved(
            ["t"], timeout=5, alive=lambda: False
        )
        assert results == {}
        assert "drainers exited" in failures["t"]["error"]

    def test_wait_resolved_times_out(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {})
        with pytest.raises(DistributionError, match="timed out"):
            queue.wait_resolved(["t"], timeout=0.2, poll=0.05)

    def test_relaunch_discards_superseded_attempts(self, tmp_path):
        # A re-posted attempt cleans up its predecessors' queue entries
        # so no drainer burns budget on an outcome nobody awaits.
        spec = tiny_spec()
        tasks = plan_tasks(plan_units(spec), 1)
        retry = ShardSpec.from_dict(tasks[0].to_dict())
        retry.attempt = 1
        queue = WorkQueue(str(tmp_path / "queue"))
        queue.post(task_name(tasks[0]), {"stale": True})
        WorkQueueLauncher(drainers=1, mode="thread", timeout=60,
                          stale_after=None).launch(
            spec, [retry, tasks[1]], str(tmp_path)
        )
        assert queue.result_for(task_name(tasks[0])) is None
        assert queue.result_for(task_name(retry)) is not None


# --------------------------------------------------------------------------- #
# chaos hook
# --------------------------------------------------------------------------- #
class TestChaosHook:
    def test_noop_without_directive(self):
        maybe_inject_chaos("unit-0000.a0")  # must not raise

    def test_fail_directive_fires_once_with_marker(self, monkeypatch, tmp_path):
        chaos_fail_once(monkeypatch, tmp_path, "unit-0000.a0")
        with pytest.raises(RuntimeError, match="chaos"):
            maybe_inject_chaos("unit-0000.a0")
        maybe_inject_chaos("unit-0000.a0")  # marker exists: no-op now

    def test_suffixless_directive_matches_every_attempt(self, monkeypatch):
        monkeypatch.setenv(CHAOS_FAIL_ENV, "unit-0001")
        for attempt in range(3):
            with pytest.raises(RuntimeError):
                maybe_inject_chaos(f"unit-0001.a{attempt}")
        maybe_inject_chaos("unit-0002.a0")  # other tasks untouched

    def test_kill_degrades_to_exception_in_process(self, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "unit-0000.a0")
        with pytest.raises(RuntimeError, match="chaos"):
            maybe_inject_chaos("unit-0000.a0", allow_kill=False)


# --------------------------------------------------------------------------- #
# launcher outcomes + the driver's retry loop
# --------------------------------------------------------------------------- #
class TestDriverRetries:
    def test_inprocess_failure_is_an_outcome_not_an_abort(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(CHAOS_FAIL_ENV, "unit-0001")
        spec = tiny_spec()
        tasks = plan_tasks(plan_units(spec), 2)
        outcomes = InProcessLauncher().launch(spec, tasks, None, width=2)
        assert len(outcomes) == 2
        assert not isinstance(outcomes[0], TaskFailure)  # survivor kept
        failure = outcomes[1]
        assert isinstance(failure, TaskFailure)
        assert (failure.index, failure.attempt) == (1, 0)
        assert "chaos" in failure.error

    def test_exhausted_retries_report_survivors(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHAOS_FAIL_ENV, "unit-0001")
        with pytest.raises(DistributionError) as excinfo:
            run_sharded(tiny_spec(), shards=2, max_retries=1)
        message = str(excinfo.value)
        assert "retries exhausted" in message
        assert "1/2 tasks completed" in message
        assert "unit-0001.a1" in message  # the attempt that sealed it

    def test_retry_recovers_and_matches_clean_run(self, monkeypatch, tmp_path):
        reference = run_sharded(tiny_spec(), shards=2)
        chaos_fail_once(monkeypatch, tmp_path, "unit-0001.a0")
        out = run_sharded(tiny_spec(), shards=2, max_retries=1)
        assert out.report.best.best_config == reference.report.best.best_config
        assert out.report.best.objective == reference.report.best.objective
        ft = out.stats["fault_tolerance"]
        assert ft["retries"] == 1
        assert ft["retried_tasks"] == {1: 1}
        assert ft["task_launches"] == 3
        assert len(ft["excluded"][1]) == 1

    def test_shard_granularity_retry(self, monkeypatch, tmp_path):
        reference = run_sharded(tiny_spec(), shards=2, granularity="shard")
        chaos_fail_once(monkeypatch, tmp_path, "unit-0000.a0")
        out = run_sharded(tiny_spec(), shards=2, granularity="shard",
                          max_retries=1)
        assert out.report.best.objective == reference.report.best.objective
        assert out.stats["fault_tolerance"]["granularity"] == "shard"
        assert out.stats["fault_tolerance"]["retries"] == 1

    def test_driver_validates_arguments(self):
        with pytest.raises(DistributionError, match="max_retries"):
            run_sharded(tiny_spec(), shards=1, max_retries=-1)
        with pytest.raises(DistributionError, match="granularity"):
            run_sharded(tiny_spec(), shards=1, granularity="molecule")

    def test_subprocess_kill_between_claim_and_complete_is_retried(
        self, monkeypatch, tmp_path
    ):
        # The worker process dies hard (os._exit) while owning the task;
        # the launcher reports the non-zero exit, the driver re-posts.
        reference = run_sharded(tiny_spec(), shards=2)
        marker = str(tmp_path / "kill-marker")
        monkeypatch.setenv(CHAOS_KILL_ENV, f"unit-0000.a0@{marker}")
        out = run_sharded(
            tiny_spec(), shards=2,
            launcher=SubprocessLauncher(timeout=300),
            shard_dir=str(tmp_path / "shards"), max_retries=1,
        )
        assert os.path.exists(marker), "chaos kill never fired"
        assert out.report.best.objective == reference.report.best.objective
        assert out.stats["fault_tolerance"]["retried_tasks"] == {0: 1}

    def test_workqueue_recorded_failure_is_retried(self, monkeypatch, tmp_path):
        reference = run_sharded(tiny_spec(), shards=2)
        chaos_fail_once(monkeypatch, tmp_path, "unit-0001.a0")
        out = run_sharded(
            tiny_spec(), shards=2,
            launcher=WorkQueueLauncher(drainers=2, mode="thread", timeout=300,
                                       stale_after=None),
            shard_dir=str(tmp_path / "shards"), max_retries=2,
        )
        assert out.report.best.objective == reference.report.best.objective
        ft = out.stats["fault_tolerance"]
        assert ft["retried_tasks"] == {1: 1}
        assert ft["excluded"][1]  # the failing drainer was recorded


# --------------------------------------------------------------------------- #
# end-to-end orphan recovery: kill a real drainer between claim and complete
# --------------------------------------------------------------------------- #
class TestOrphanRecovery:
    def drainer_env(self, tmp_path, kill_target=None):
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = {**os.environ, "PYTHONPATH": src}
        if kill_target:
            env[CHAOS_KILL_ENV] = f"{kill_target}@{tmp_path}/kill-marker"
        env.pop(CHAOS_FAIL_ENV, None)
        return env

    def post_real_task(self, queue, name):
        spec = tiny_spec()
        task = plan_tasks(plan_units(spec), 1)[0]
        queue.post(name, {
            "name": name,
            "run": spec.to_dict(),
            "shard": task.to_dict(),
            "spill_dir": None,
        })

    def test_killed_drainer_orphans_claim_then_reaper_recovers(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        self.post_real_task(queue, "unit-0000.a0")

        # Drainer 1 claims the task and dies hard before completing.
        proc = subprocess.run(
            [sys.executable, "-m", "repro.distrib.worker",
             "--drain", queue_dir, "--heartbeat", "0.2"],
            env=self.drainer_env(tmp_path, kill_target="unit-0000.a0"),
            capture_output=True, timeout=120,
        )
        assert proc.returncode == 137
        assert queue.claimed() == ["unit-0000.a0"], (
            "the kill must land between claim and complete"
        )
        assert queue.result_for("unit-0000.a0") is None

        # Without the reaper the task is orphaned forever (the
        # regression this PR closes); with it, the claim goes back.
        age_claim(queue, "unit-0000.a0")
        reaper = ReaperThread(queue, stale_after=0.5, poll=0.05)
        reaper.start()
        deadline = time.monotonic() + 10
        while not queue.pending() and time.monotonic() < deadline:
            time.sleep(0.05)
        reaper.stop()
        reaper.join(timeout=2)
        assert queue.pending() == ["unit-0000.a0"]

        # A surviving drainer (chaos marker already burned) finishes it.
        completed = drain(queue_dir)
        assert completed == 1
        result = queue.result_for("unit-0000.a0")
        assert result is not None
        assert len(result["units"][0]["history"]) == tiny_spec().budget

    def test_run_sharded_survives_drainer_killed_mid_run(self, monkeypatch, tmp_path):
        # Full-stack version: two subprocess drainers, one dies hard on
        # its first claim; the launcher's reaper requeues and the run
        # completes bit-identically without burning a driver retry.
        reference = run_sharded(tiny_spec(), shards=2)
        marker = str(tmp_path / "kill-marker")
        monkeypatch.setenv(CHAOS_KILL_ENV, f"unit-0000.a0@{marker}")
        out = run_sharded(
            tiny_spec(), shards=2,
            launcher=WorkQueueLauncher(drainers=2, mode="subprocess",
                                       timeout=300, stale_after=2.0,
                                       heartbeat=0.3),
            shard_dir=str(tmp_path / "shards"), max_retries=2,
        )
        assert os.path.exists(marker), "chaos kill never fired"
        assert out.report.best.best_config == reference.report.best.best_config
        assert out.report.best.objective == reference.report.best.objective
