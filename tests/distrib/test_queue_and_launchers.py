"""Work-queue protocol and launcher behaviour tests.

The queue's two primitives (atomic post, atomic claim) carry all the
multi-machine coordination, so they get direct adversarial tests; the
launchers get contract tests (results in shard order, failures
surfaced as DistributionError)."""

import json
import os
import threading

import pytest

from repro.distrib import (
    DatasetRef,
    ModelEntry,
    RunSpec,
    SubprocessLauncher,
    TaskFailure,
    WorkQueue,
    WorkQueueLauncher,
    make_launcher,
    plan_shards,
    plan_units,
)
from repro.distrib.worker import drain, main as worker_main, reap
from repro.errors import DistributionError


def tiny_spec(**overrides):
    base = dict(
        target="tofino",
        models=[
            ModelEntry(
                name="tc",
                dataset=DatasetRef.for_app("tc", n_train=60, n_test=30, seed=11),
                algorithms=("decision_tree",),
            )
        ],
        budget=2,
        warmup=1,
        train_epochs=3,
        seed=0,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestWorkQueue:
    def test_post_then_claim_roundtrip(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t1", {"value": 42})
        assert queue.pending() == ["t1"]
        name, payload = queue.claim()
        assert (name, payload) == ("t1", {"value": 42})
        assert queue.pending() == []
        assert queue.claimed() == ["t1"]

    def test_claim_is_exclusive_under_racing_workers(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        for i in range(6):
            queue.post(f"t{i}", {"i": i})
        wins: list = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            while True:
                claim = queue.claim()
                if claim is None:
                    return
                wins.append(claim[0])

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(wins) == [f"t{i}" for i in range(6)]
        assert len(wins) == len(set(wins))  # no task claimed twice

    def test_complete_releases_claim_and_publishes(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        name, _ = queue.claim()
        queue.complete(name, {"done": True})
        assert queue.claimed() == []
        assert queue.result_for("t") == {"done": True}

    def test_fail_records_error_and_task(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        name, _ = queue.claim()
        queue.fail(name, "boom")
        failure = queue.failure_for("t")
        assert failure["error"] == "boom"
        assert failure["task"] == {"x": 1}
        assert queue.claimed() == []

    def test_wait_names_raises_on_failure(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        name, _ = queue.claim()
        queue.fail(name, "kaput")
        with pytest.raises(DistributionError, match="kaput"):
            queue.wait_names(["t"], timeout=1)

    def test_wait_names_times_out(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        with pytest.raises(DistributionError, match="timed out"):
            queue.wait_names(["t"], timeout=0.2, poll=0.05)

    def test_requeue_stale(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        assert queue.requeue_stale("t") is True
        assert queue.pending() == ["t"]
        assert queue.requeue_stale("missing") is False

    def test_posts_are_atomic_no_partial_reads(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        payload = {"blob": "x" * 200_000}
        stop = threading.Event()
        errors: list = []

        def poster():
            while not stop.is_set():
                queue.post("big", payload)

        thread = threading.Thread(target=poster)
        thread.start()
        try:
            for _ in range(50):
                path = os.path.join(str(tmp_path), "tasks", "big.json")
                if os.path.exists(path):
                    try:
                        with open(path) as handle:
                            json.load(handle)
                    except json.JSONDecodeError as exc:  # pragma: no cover
                        errors.append(exc)
        finally:
            stop.set()
            thread.join()
        assert not errors


class TestReap:
    """The standalone reaper: external-only fleets must survive the
    driver host (and its in-process ReaperThread) dying."""

    def backdate_claim(self, queue_dir, name, age_s=3600.0):
        path = os.path.join(str(queue_dir), "claimed", f"{name}.json")
        past = os.path.getmtime(path) - age_s
        os.utime(path, (past, past))

    def test_reap_requeues_stale_claim(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        self.backdate_claim(tmp_path, "t")
        seen: list = []
        assert reap(str(tmp_path), stale_after=60.0, once=True,
                    on_reap=seen.append) == 1
        assert seen == ["t"]
        assert queue.claimed() == []
        assert queue.pending() == ["t"]
        # A surviving drainer can now pick the task back up.
        assert queue.claim() == ("t", {"x": 1})

    def test_reap_spares_fresh_claims(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("fresh", {"x": 1})
        queue.post("stale", {"x": 2})
        queue.claim()
        queue.claim()
        self.backdate_claim(tmp_path, "stale")
        assert reap(str(tmp_path), stale_after=60.0, once=True) == 1
        assert queue.claimed() == ["fresh"]
        assert queue.pending() == ["stale"]

    def test_reap_rejects_nonpositive_stale_after(self, tmp_path):
        with pytest.raises(DistributionError, match="stale_after"):
            reap(str(tmp_path), stale_after=0.0, once=True)

    def test_reap_loop_honours_stop(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        self.backdate_claim(tmp_path, "t")
        rounds: list = []

        def stop():
            rounds.append(True)
            return len(rounds) >= 2

        assert reap(str(tmp_path), stale_after=60.0, poll=0.01,
                    stop=stop) == 1
        assert len(rounds) == 2

    def test_worker_main_reap_mode(self, tmp_path, capsys):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        self.backdate_claim(tmp_path, "t")
        assert worker_main(["--reap", str(tmp_path), "--stale-after", "30",
                            "--once"]) == 0
        out = capsys.readouterr().out
        assert "requeued stale claim: t" in out
        assert "reaped 1 stale claim(s)" in out
        assert queue.pending() == ["t"]

    def test_worker_main_reap_rejects_bad_stale_after(self, tmp_path, capsys):
        assert worker_main(["--reap", str(tmp_path), "--stale-after", "-1",
                            "--once"]) == 2
        assert "--stale-after" in capsys.readouterr().err


class TestClockSkew:
    """Staleness is judged on the queue filesystem's clock, never the
    local wall clock — a driver whose clock runs an hour ahead of the
    shared filesystem must not reap every healthy worker's claim."""

    def test_skewed_local_clock_spares_fresh_claims(self, tmp_path,
                                                    monkeypatch):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()   # heartbeat mtime stamped by the filesystem
        import time as real_time
        skewed = real_time.time() + 3600.0
        monkeypatch.setattr("repro.distrib.queuedir.time",
                            type("T", (), {"time": staticmethod(
                                lambda: skewed)}))
        # fs_now() reads the probe file's mtime — the same clock that
        # stamped the heartbeat — so the hour of skew cancels out.
        assert queue.stale_claims(60.0) == []

    def test_actually_stale_claims_still_reaped_under_skew(self, tmp_path,
                                                           monkeypatch):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        path = os.path.join(str(tmp_path), "claimed", "t.json")
        past = os.path.getmtime(path) - 3600.0
        os.utime(path, (past, past))
        import time as real_time
        skewed = real_time.time() - 7200.0   # local clock two hours behind
        monkeypatch.setattr("repro.distrib.queuedir.time",
                            type("T", (), {"time": staticmethod(
                                lambda: skewed)}))
        assert queue.stale_claims(60.0) == ["t"]

    def test_reclaim_resets_heartbeat_mtime(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("t", {"x": 1})
        queue.claim()
        path = os.path.join(str(tmp_path), "claimed", "t.json")
        past = os.path.getmtime(path) - 3600.0
        os.utime(path, (past, past))
        assert reap(str(tmp_path), stale_after=60.0, once=True) == 1
        # os.rename preserves the stale source mtime; claim() must
        # re-stamp it or the reaper eats the task straight back.
        assert queue.claim() == ("t", {"x": 1})
        assert queue.stale_claims(60.0) == []

    def test_fs_now_tracks_filesystem_clock(self, tmp_path):
        import time as real_time
        queue = WorkQueue(str(tmp_path))
        before = real_time.time()
        now = queue.fs_now()
        # tmp_path is a local filesystem: its clock IS the wall clock
        # (modulo mtime granularity).
        assert abs(now - before) < 5.0

    def test_fs_now_falls_back_when_probe_unwritable(self, tmp_path):
        import time as real_time
        queue = WorkQueue(str(tmp_path))
        queue.root = "/proc"   # unwritable even for root
        now = queue.fs_now()
        assert abs(now - real_time.time()) < 5.0


class TestDrain:
    def test_drain_executes_posted_shards_and_exits_when_empty(self, tmp_path):
        spec = tiny_spec()
        shards = plan_shards(plan_units(spec), 1)
        queue = WorkQueue(str(tmp_path))
        queue.post("shard-0000", {"run": spec.to_dict(),
                                  "shard": shards[0].to_dict(),
                                  "spill_dir": None})
        completed = drain(str(tmp_path))
        assert completed == 1
        result = queue.result_for("shard-0000")
        assert result["index"] == 0
        assert len(result["units"][0]["history"]) == spec.budget

    def test_drain_records_failures_and_continues(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.post("bad", {"run": {"broken": True}, "shard": {}})
        completed = drain(str(tmp_path))
        assert completed == 0
        assert queue.failure_for("bad") is not None

    def test_worker_main_task_mode(self, tmp_path):
        spec = tiny_spec()
        shards = plan_shards(plan_units(spec), 1)
        task = tmp_path / "task.json"
        out = tmp_path / "out.json"
        task.write_text(json.dumps({
            "run": spec.to_dict(), "shard": shards[0].to_dict(),
            "spill_dir": None,
        }))
        assert worker_main(["--task", str(task), "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["n_shards"] == 1

    def test_worker_main_task_requires_out(self, capsys):
        assert worker_main(["--task", "x.json"]) == 2
        assert "--out" in capsys.readouterr().err


class TestLaunchers:
    def test_make_launcher_registry(self):
        assert make_launcher("inprocess").name == "inprocess"
        assert make_launcher("subprocess").name == "subprocess"
        assert make_launcher("workqueue", mode="thread").name == "workqueue"
        with pytest.raises(DistributionError):
            make_launcher("teleporter")

    def test_subprocess_launcher_requires_shard_dir(self):
        spec = tiny_spec()
        shards = plan_shards(plan_units(spec), 1)
        with pytest.raises(DistributionError):
            SubprocessLauncher().launch(spec, shards, None)

    def test_subprocess_launcher_reports_worker_crash_as_failure(self, tmp_path):
        # An npz ref pointing nowhere: the worker exits non-zero and the
        # launcher must hand back a TaskFailure outcome (with the
        # worker's stderr) instead of raising away surviving results.
        spec = tiny_spec()
        good_shards = plan_shards(plan_units(spec), 1)
        spec.models[0].dataset = DatasetRef.for_npz(str(tmp_path / "gone.npz"))
        outcomes = SubprocessLauncher(timeout=120).launch(
            spec, good_shards, str(tmp_path)
        )
        assert len(outcomes) == 1
        failure = outcomes[0]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 0
        assert failure.attempt == 0
        assert "gone.npz" in failure.error

    def test_workqueue_launcher_requires_shard_dir(self):
        spec = tiny_spec()
        shards = plan_shards(plan_units(spec), 1)
        with pytest.raises(DistributionError):
            WorkQueueLauncher(mode="thread").launch(spec, shards, None)

    def test_workqueue_launcher_validation(self):
        with pytest.raises(DistributionError):
            WorkQueueLauncher(mode="smoke-signals")
        with pytest.raises(DistributionError):
            WorkQueueLauncher(drainers=-1)

    def test_workqueue_thread_mode_completes(self, tmp_path):
        spec = tiny_spec()
        shards = plan_shards(plan_units(spec), 1)
        results = WorkQueueLauncher(drainers=2, mode="thread", timeout=120).launch(
            spec, shards, str(tmp_path)
        )
        assert len(results) == 1
        assert len(results[0].units[0].history) == spec.budget

    def test_workqueue_launcher_reports_shard_failure_as_outcome(self, tmp_path):
        spec = tiny_spec()
        shards = plan_shards(plan_units(spec), 1)
        spec.models[0].dataset = DatasetRef.for_npz(str(tmp_path / "gone.npz"))
        outcomes = WorkQueueLauncher(
            drainers=1, mode="thread", timeout=60, stale_after=None,
        ).launch(spec, shards, str(tmp_path))
        assert len(outcomes) == 1
        failure = outcomes[0]
        assert isinstance(failure, TaskFailure)
        assert "gone.npz" in failure.error
        assert failure.worker  # queue failures carry the worker identity
