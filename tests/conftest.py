"""Shared fixtures: small deterministic datasets and trained models.

Everything is seeded and sized for test speed; session scope avoids
re-generating/re-training per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_botnet, load_iot, load_nslkdd
from repro.ml.network import NeuralNetwork
from repro.ml.preprocessing import StandardScaler


@pytest.fixture(scope="session")
def blobs_binary():
    """Two well-separated Gaussian blobs (700 train / 300 test, 7 features)."""
    rng = np.random.default_rng(42)
    X0 = rng.normal(0.0, 1.0, (500, 7))
    X1 = rng.normal(2.5, 1.0, (500, 7))
    X = np.vstack([X0, X1])
    y = np.array([0] * 500 + [1] * 500)
    order = rng.permutation(1000)
    X, y = X[order], y[order]
    return X[:700], y[:700], X[700:], y[700:]


@pytest.fixture(scope="session")
def ad_dataset():
    return load_nslkdd(n_train=900, n_test=300, seed=7)


@pytest.fixture(scope="session")
def tc_dataset():
    return load_iot(n_train=900, n_test=300, seed=11)


@pytest.fixture(scope="session")
def bd_dataset():
    return load_botnet(n_train_flows=150, n_test_flows=60, seed=13)


@pytest.fixture(scope="session")
def trained_ad_net(ad_dataset):
    """A small trained AD network + its scaler (used by backend tests)."""
    scaler = StandardScaler().fit(ad_dataset.train_x)
    net = NeuralNetwork([7, 10, 6, 1], seed=0)
    net.fit(
        scaler.transform(ad_dataset.train_x),
        ad_dataset.train_y.astype(float),
        epochs=25,
        batch_size=32,
        learning_rate=0.01,
    )
    return net, scaler
