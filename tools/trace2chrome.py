#!/usr/bin/env python
"""Convert a ``trace.jsonl`` span sink to Chrome ``trace_event`` JSON.

The serving/search/control planes emit spans as JSON lines (see
:mod:`repro.obs.trace`).  This tool folds one or more sinks into a
single document loadable in ``chrome://tracing`` or
https://ui.perfetto.dev::

    PYTHONPATH=src python tools/trace2chrome.py obs/trace.jsonl -o trace.json
    PYTHONPATH=src python tools/trace2chrome.py --check trace.json

``--check`` schema-validates an already-exported document (the
obs-smoke CI job runs it after a 2-shard export) and exits 1 on any
problem.  Multiple input sinks merge onto one timeline — wall-clock
timestamps line the processes up.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.trace import load_events, to_chrome_trace, validate_chrome_trace


def main(argv: "list | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="trace.jsonl sink(s), or the exported JSON "
                             "document with --check")
    parser.add_argument("-o", "--out", default=None,
                        help="output path (default: stdout)")
    parser.add_argument("--check", action="store_true",
                        help="schema-validate an exported Chrome trace")
    args = parser.parse_args(argv)

    if args.check:
        failures = 0
        for path in args.paths:
            with open(path) as handle:
                doc = json.load(handle)
            problems = validate_chrome_trace(doc)
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
            if problems:
                failures += 1
            else:
                print(f"{path}: ok ({len(doc['traceEvents'])} events)")
        return 1 if failures else 0

    events: list = []
    for path in args.paths:
        events.extend(load_events(path))
    doc = to_chrome_trace(events)
    rendered = json.dumps(doc, indent=1, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {len(doc['traceEvents'])} event(s) to {args.out}")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
