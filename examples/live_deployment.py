#!/usr/bin/env python3
"""Deploying a generated pipeline against live traffic.

The compiler's output is a data-plane program; this example shows what
happens *after* `generate()`: a botnet detector runs per-packet over an
interleaved stream of P2P flows through the **async serving runtime** —
feature extraction, deadline micro-batching, inference, and recording
run as pipelined stages over bounded queues, with conversation state
(partial flowmarkers) maintained switch-register-style and latency /
throughput / drop telemetry reported to the operator.

The finale is a **hitless upgrade**: a retrained v2 detector is
compare-and-swapped into the engine mid-stream (the switch-agent
table-rewrite story) — zero packets dropped, the swap landing on a
micro-batch boundary.  See docs/serving.md for the semantics.

Run:  python examples/live_deployment.py
"""

import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.core.export import export_report
from repro.datasets import load_botnet
from repro.datasets.botnet import flow_label, generate_botnet_flows
from repro.runtime import FlowmarkerTracker
from repro.serving import AsyncStreamEngine

SEED = 0


# --- 1. compile the detector (training on full-flow markers) -------------- #
@DataLoader
def bd_loader():
    return load_botnet(n_train_flows=300, n_test_flows=100, seed=SEED + 13)


spec = Model(
    {
        "optimization_metric": ["f1"],
        "algorithm": ["dnn"],
        "name": "botnet_detector",
        "data_loader": bd_loader,
    }
)
platform = Platforms.Taurus().constrain(
    performance={"throughput": 1, "latency": 500},
    resources={"rows": 16, "cols": 16},
)
platform.schedule(spec)
report = repro.generate(platform, budget=10, seed=SEED)
best = report.best
print(report.summary())

# --- 2. export the deployment bundle --------------------------------------- #
import tempfile

bundle_dir = tempfile.mkdtemp(prefix="homunculus_deploy_")
bundle = export_report(report, bundle_dir)
print(f"\ndeployment bundle written to {bundle}")

# --- 3. run it against a live stream --------------------------------------- #
# Rebuild the winning pipeline (deterministic) and stream fresh traffic
# through it, interleaved by timestamp like a real capture.
from repro.core.evaluator import ModelEvaluator
from repro.backends.taurus import TaurusBackend
from repro.rng import derive

evaluator = ModelEvaluator(
    spec,
    bd_loader.load("botnet_detector"),
    best.algorithm,
    TaurusBackend(),
    report.constraints,
    seed=int(derive(SEED, 0).integers(0, 2**31)),
)
_, pipeline, _ = evaluator.rebuild(best.best_config)

flows = generate_botnet_flows(200, seed=SEED + 1234)
tagged = []
for flow in flows:
    label = flow_label(flow)
    for packet in flow:
        tagged.append((packet.timestamp, packet, label))
tagged.sort(key=lambda item: item[0])
packets = [item[1] for item in tagged]
labels = [item[2] for item in tagged]

tracker = FlowmarkerTracker(max_conversations=1024)
engine = AsyncStreamEngine(
    pipeline,
    tracker,
    batch_size=256,
    max_latency=2e-3,      # flush partial batches after 2 ms
    queue_depth=1024,      # switch-style fixed-depth stage FIFOs
    drop_policy="block",   # lossless: bit-identical to the sync processor
    infer_workers=2,
)
engine.process(packets, labels)

stats = engine.stats
summary = stats.summary()
print(f"\nstreamed {stats.packets} packets across {len(flows)} flows "
      f"at {summary['throughput_pps']:.0f} pkt/s")
print(f"online per-packet accuracy: {stats.accuracy:.3f}")
print(f"flagged-malicious rate:     {stats.positive_rate():.3f}")
print(f"conversations tracked:      {len(tracker)} (evictions: {tracker.evictions})")
print(f"micro-batches:              {summary['batches']} "
      f"(mean {summary['mean_batch']:.1f} rows, "
      f"{summary['deadline_flushes']} deadline flushes)")
print(f"serving latency (us):       p50 {summary['latency_p50_us']:.0f} / "
      f"p95 {summary['latency_p95_us']:.0f} / p99 {summary['latency_p99_us']:.0f}")
print(f"queue depth / drops:        {summary['queue_max_depth']} / "
      f"{summary['dropped']}")
tp = stats.confusion.get((1, 1), 0)
fn = stats.confusion.get((1, 0), 0)
fp = stats.confusion.get((0, 1), 0)
recall = tp / (tp + fn) if tp + fn else 0.0
precision = tp / (tp + fp) if tp + fp else 0.0
print(f"per-packet precision/recall: {precision:.3f} / {recall:.3f}")
print(
    f"\nevery verdict took {pipeline.performance.latency_ns:.0f} ns of pipeline "
    "latency — the reaction-time win over flow-complete detection."
)

# --- 4. hitless upgrade: swap in a retrained v2 mid-stream ----------------- #
# Retrain with a different seed (a model refresh on newer data, say) and
# compare-and-swap it into the live engine between micro-batches.
import asyncio

from repro.serving import replay

v2_evaluator = ModelEvaluator(
    spec,
    bd_loader.load("botnet_detector"),
    best.algorithm,
    TaurusBackend(),
    report.constraints,
    seed=int(derive(SEED + 1, 0).integers(0, 2**31)),
)
_, pipeline_v2, _ = v2_evaluator.rebuild(best.best_config)

upgrade_engine = AsyncStreamEngine(
    pipeline,
    FlowmarkerTracker(max_conversations=1024),
    batch_size=256,
    drop_policy="block",
    infer_workers=2,
)


async def serve_with_upgrade():
    half = len(packets) // 2

    async def source():
        count = 0
        async for item in replay(packets, labels):
            yield item
            count += 1
            if count == half:
                old = upgrade_engine.swap_pipeline(pipeline_v2, expected=pipeline)
                assert old is pipeline

    return await upgrade_engine.run(source())


upgraded_preds = asyncio.run(serve_with_upgrade())
up_stats = upgrade_engine.stats
print(
    f"\nhitless upgrade: swapped v1 -> v2 mid-stream after "
    f"~{len(packets) // 2} packets"
)
print(
    f"  served {up_stats.packets}/{len(packets)} packets, "
    f"{up_stats.dropped} dropped, {up_stats.swaps} swap "
    f"(generation {upgrade_engine.pipeline_generation})"
)
print(
    "  traffic never stopped: the swap landed between micro-batches, "
    "like a switch-agent table rewrite."
)
