#!/usr/bin/env python3
"""Quickstart: the paper's Figure-3 program, line for line.

An anomaly-detection pipeline for a Taurus switch: declare the dataset,
the objective (F1), and the platform constraints — Homunculus searches
the model design space, trains candidates, checks feasibility against the
switch resources, and emits the Spatial program for the winner.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.datasets import load_nslkdd, save_csv_dataset, load_csv_dataset

# The paper's program loads train_ad.csv / test_ad.csv from disk; we first
# synthesize the NSL-KDD-style dataset and write those files.
workdir = tempfile.mkdtemp(prefix="homunculus_quickstart_")
train_csv, test_csv = save_csv_dataset(load_nslkdd(seed=7), workdir, prefix="ad")


@DataLoader  # training data loader definition (Figure 3, line 6)
def wrapper_func():
    dataset = load_csv_dataset(train_csv, test_csv, name="anomaly_detection")
    return {
        "data": {"train": dataset.train_x, "test": dataset.test_x},
        "labels": {"train": dataset.train_y, "test": dataset.test_y},
    }


# Specify the model of choice (Figure 3, line 17)
model_spec = Model(
    {
        "optimization_metric": ["f1"],
        "algorithm": ["dnn"],
        "name": "anomaly_detection",
        "data_loader": wrapper_func,
    }
)

# Load platform (Figure 3, line 24)
platform = Platforms.Taurus()
platform.constrain(
    performance={"throughput": 1, "latency": 500},  # GPkt/s, ns
    resources={"rows": 16, "cols": 16},
)

# Schedule model and generate code (Figure 3, line 32)
platform.schedule(model_spec)
report = repro.generate(platform, budget=15, seed=0)

print(report.summary())
best = report.best
print(f"\nwinning configuration: {best.best_config}")
print(f"topology: {best.metadata['topology']}  ({best.n_params} parameters)")
print(
    f"performance: {best.performance.throughput_gpps:.2f} Gpkt/s, "
    f"{best.performance.latency_ns:.0f} ns latency"
)

# The generated Spatial program:
source_name = next(iter(best.sources))
out_path = os.path.join(workdir, source_name)
with open(out_path, "w") as handle:
    handle.write(best.sources[source_name])
print(f"\ngenerated Spatial source written to {out_path}")
print("--- first lines ---")
print("\n".join(best.sources[source_name].splitlines()[:14]))
