#!/usr/bin/env python3
"""Closing the loop: drift-triggered retrain-and-redeploy.

``live_deployment.py`` ends with a *manual* hitless upgrade — an
operator decides a refresh is due and swaps it in.  This example
removes the operator.  A fleet serves a botnet detector while the
botnet **evolves to evade it**: mid-run, the Storm/Waledac C2 channels
migrate into benign-P2P territory (UDP, uTorrent's port block,
data-packet-sized payloads), and the v0 model's accuracy collapses
toward the benign base rate.

The :class:`~repro.drift.AdaptationLoop` notices and repairs this with
no human in the loop:

1. **detect** — windowed drift detectors (per-class prediction-rate
   shift; PSI + KS feature divergence) watch the serving stream through
   a ring-buffered :class:`~repro.drift.TrafficCapture`; hysteresis
   demands consecutive drifted windows before confirming, and a
   cooldown stops re-triggering while a repair is already underway.
2. **retrain** — the capture ring *is* the new training set: recent
   labeled traffic is snapshotted to a ``DatasetRef`` and handed to
   ``run_sharded`` — the same fault-tolerant distributed search used
   offline, so a crashed search worker costs a retry, not the result.
3. **redeploy** — the merged winner is registered and rolled out
   through the :class:`~repro.control.FleetController` behind its
   regression gate: a bad retrain rolls back automatically and the
   fleet keeps serving what it was serving.

Watch for: drift confirmed shortly after the shift, one retrain, a
gated swap to ``adapt-1``, window accuracy recovering to ~1.0 — and
zero dropped packets throughout (block-mode ingress).

Run:  PYTHONPATH=src python examples/adaptive_deployment.py
(see docs/adaptation.md for the detector math and the safety argument)
"""

import asyncio

from repro.control import ControlClient, ControlServer, FleetController, FleetWorker
from repro.drift import AdaptationLoop, DriftMonitor, TrafficCapture
from repro.drift.scenario import (
    PHASE_PRE,
    PHASE_SHIFTED,
    adaptation_spec_factory,
    phase_trace,
    shifting_traffic,
    train_initial_pipeline,
)
from repro.netsim.features import PACKET_FEATURE_NAMES
from repro.runtime import PacketFeatureExtractor
from repro.serving import AsyncStreamEngine

SEED = 13
RATE_PPS = 4000.0
SHIFT_AFTER_S = 2.0

# --- 1. the fleet before the storm ---------------------------------------- #
print("training v0 on pre-shift traffic...")
v0, v0_dataset = train_initial_pipeline(seed=SEED, n_train_flows=80,
                                        n_test_flows=20)
print(f"v0 compiled for Taurus: {v0.resources['cus']} CUs / "
      f"{v0.resources['mus']} MUs, trained on {v0_dataset.n_train} packets")

pre = phase_trace(80, PHASE_PRE, seed=SEED + 101)
post = phase_trace(80, PHASE_SHIFTED, seed=SEED + 202)
print(f"traces: {len(pre[0])} pre-shift packets, "
      f"{len(post[0])} shifted packets per lap")


async def main():
    stop = asyncio.Event()

    # The capture ring taps the engine's record stage: every classified
    # packet lands here with its features, label, prediction, timestamp.
    # It is both the drift detectors' evidence and the retrain dataset.
    capture = TrafficCapture(capacity=4096,
                             feature_names=PACKET_FEATURE_NAMES)
    engine = AsyncStreamEngine(
        v0, PacketFeatureExtractor(), batch_size=64,
        queue_depth=512,        # shallow queue: the capture stays fresh
        drop_policy="block",    # lossless — the zero-drop gate is real
        capture=capture,
    )
    worker = FleetWorker("w0", engine, version="v0")
    controller = FleetController([worker])

    monitor = DriftMonitor(window=192, min_window=64,
                           feature_names=PACKET_FEATURE_NAMES)
    loop = AdaptationLoop(
        controller, monitor,
        adaptation_spec_factory(budget=3, seed=SEED, train_epochs=10),
        shards=2, max_retries=1, check_interval_s=0.25,
    )
    server = ControlServer(controller, adaptation=loop)
    port = await server.start()
    print(f"control plane on :{port} (GET /adaptation for loop state)\n")

    def on_shift():
        acc = capture.accuracy(last=128)
        print(f">>> traffic shifted (botnet went evasive); serving "
              f"accuracy at the shift: {acc}")

    worker.attach(asyncio.create_task(engine.run(
        shifting_traffic(stop, pre, post, rate=RATE_PPS,
                         shift_after_s=SHIFT_AFTER_S, on_shift=on_shift))))
    loop_task = asyncio.create_task(loop.run(stop))

    clock = asyncio.get_running_loop()
    deadline = clock.time() + 150.0
    last_state = None
    while clock.time() < deadline:
        if loop.state_name != last_state:
            print(f"    loop state: {loop.state_name}")
            last_state = loop.state_name
        if loop.deployed >= 1:
            break
        await asyncio.sleep(0.1)
    # Let adapt-1 serve for a moment so the recovery shows in the window.
    await asyncio.sleep(1.0)
    remote = await ControlClient(port=port).adaptation()
    stop.set()
    await asyncio.gather(worker.task, return_exceptions=True)
    await loop_task
    await server.stop()
    return remote, worker, monitor


remote, worker, monitor = asyncio.run(main())

# --- 3. what the loop did -------------------------------------------------- #
print("\ntimeline:")
for drift in monitor.events:
    print(f"  drift confirmed ({drift['signal']}): "
          + "; ".join(drift["reasons"]))
for event in remote["events"]:
    took = event["t_done"] - event["t_start"]
    retrain = event.get("retrain", {})
    print(f"  {event['version']}: {event['outcome']} in {took:.1f}s "
          f"(retrained on {retrain.get('rows', '?')} captured rows, "
          f"winner {retrain.get('algorithm', '?')})")

summary = worker.engine.stats.summary()
recovered = worker.engine.capture.accuracy(last=128)
conserved = summary["enqueued"] == summary["packets"] + summary["dropped"]
print(f"\nfleet after adaptation: {worker.name} serving {worker.version}")
print(f"  {summary['packets']} packets, {summary['dropped']} dropped, "
      f"{summary['swaps']} swap(s), conservation "
      f"{'ok' if conserved else 'VIOLATED'}")
print(f"  window accuracy now: {recovered}")
print(
    "\nno operator touched anything: the same search that generated v0 "
    "regenerated it from captured traffic, and the gate would have rolled "
    "back a bad retrain automatically."
)
