#!/usr/bin/env python3
"""Traffic classification on a MAT-based switch (the IIsy backend, §4/§5.2.2).

Classifies IoT device types from packet-header features.  The Tofino
target constrains the search to MAT-mappable algorithms; with only a
handful of tables available, Homunculus automatically trades cluster
granularity for resources (the Figure-7 behaviour).

Run:  python examples/traffic_classification_tofino.py
"""

import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.datasets import load_iot


@DataLoader
def iot_loader():
    return load_iot(n_train=1600, n_test=600, seed=11)


# --- A supervised pipeline: decision tree / SVM on MATs ------------------- #
supervised = Model(
    {
        "optimization_metric": ["f1"],
        "algorithm": ["decision_tree", "svm"],  # let Homunculus pick
        "name": "iot_classifier",
        "data_loader": iot_loader,
    }
)

platform = Platforms.Tofino()
platform.constrain(resources={"mats": 12})
platform.schedule(supervised)
report = repro.generate(platform, budget=10, seed=0)
print(report.summary())
best = report.best
print(f"chosen algorithm: {best.algorithm}, config: {best.best_config}")
print(f"MATs used: {best.resources['mats']} of 12, "
      f"{best.resources['entries']} table entries")

# --- The same task as clustering under a tight MAT budget ----------------- #
for mats in (5, 3):
    clustering = Model(
        {
            "optimization_metric": ["v_measure"],
            "algorithm": ["kmeans"],
            "name": f"iot_kmeans_{mats}",
            "data_loader": iot_loader,
        }
    )
    tight = Platforms.Tofino().constrain(resources={"mats": mats})
    tight.schedule(clustering)
    clustered = repro.generate(tight, budget=8, seed=0)
    result = clustered.best
    print(
        f"\n{mats} MATs available -> {result.best_config['n_clusters']} clusters, "
        f"V-measure {result.objective:.3f}"
    )

# The generated P4 program for the supervised winner:
source_name = next(iter(best.sources))
print(f"\n--- {source_name} (first lines) ---")
print("\n".join(best.sources[source_name].splitlines()[:20]))
