#!/usr/bin/env python3
"""Botnet detection with per-packet reaction time (§5.1.1–5.1.2).

FlowLens-style botnet detection aggregates packet-length and
inter-arrival-time histograms (*flowmarkers*) per conversation and
classifies after the flow completes — up to 3 600 s later.  Homunculus
instead searches a model that classifies *partial* markers on every
packet, cutting reaction time to nanoseconds.

This example:
1. generates synthetic P2P traces (Storm/Waledac botnets vs uTorrent,
   Vuze, eMule, Frostwire),
2. trains on full-flow 30-bin markers, evaluates per packet,
3. searches a Taurus model with Homunculus and compares against the
   hand-tuned FlowLens-style DNN baseline,
4. prints the F1-vs-packets-seen reaction curve.

Run:  python examples/botnet_detection.py
"""


import repro
from repro.alchemy import DataLoader, Model, Platforms
from repro.backends.taurus import TaurusBackend
from repro.datasets import load_botnet
from repro.datasets.botnet import generate_botnet_flows, partial_marker_dataset
from repro.eval.baselines import train_baseline_dnn
from repro.ml.metrics import f1_score

SEED = 0


@DataLoader
def bd_loader():
    # Train on full-flow markers, test on per-packet partial markers —
    # the paper's protocol (§5.1.2).
    return load_botnet(n_train_flows=300, n_test_flows=120, seed=SEED + 13)


dataset = bd_loader.load("botnet_detection")
print(
    f"flowmarker: {dataset.n_features} bins "
    f"(23 packet-length + 7 inter-arrival), "
    f"{dataset.n_train} training flows, {dataset.n_test} per-packet test samples"
)

# --- Hand-tuned baseline: FlowLens's detector as a 4x10 DNN --------------- #
baseline_net, baseline_scaler = train_baseline_dnn("bd", dataset, seed=SEED)
backend = TaurusBackend()
baseline_pipe = backend.compile_model(
    baseline_net, scaler=baseline_scaler, name="base_bd"
)
baseline_f1 = f1_score(dataset.test_y, baseline_pipe.predict(dataset.test_x))
print(
    f"\nBase-BD : F1 {100 * baseline_f1:.1f}, {baseline_net.n_params} params, "
    f"{baseline_pipe.resources['cus']} CUs / {baseline_pipe.resources['mus']} MUs"
)

# --- Homunculus search ----------------------------------------------------- #
model_spec = Model(
    {
        "optimization_metric": ["f1"],
        "algorithm": ["dnn"],
        "name": "botnet_detection",
        "data_loader": bd_loader,
    }
)
platform = Platforms.Taurus().constrain(
    performance={"throughput": 1, "latency": 500},
    resources={"rows": 16, "cols": 16},
)
platform.schedule(model_spec)
report = repro.generate(platform, budget=12, seed=SEED)
best = report.best
print(
    f"Hom-BD  : F1 {100 * best.objective:.1f}, {best.n_params} params, "
    f"{best.resources['cus']} CUs / {best.resources['mus']} MUs "
    f"(topology {best.metadata['topology']})"
)

# --- Reaction-time curve ---------------------------------------------------- #
flows = generate_botnet_flows(150, seed=SEED + 99)
X, y, positions = partial_marker_dataset(flows, max_packets=12)
pred = baseline_pipe.predict(X)
print("\nF1 vs packets seen (baseline model, per-packet partial markers):")
for k in range(1, 13):
    mask = positions == k
    if mask.sum() < 10:
        break
    print(f"  after {k:>2} packets: F1 {100 * f1_score(y[mask], pred[mask]):5.1f} "
          f"({int(mask.sum())} flows still active)")
print(
    f"\nreaction time: {baseline_pipe.performance.latency_ns:.0f} ns per packet, "
    "vs 3600 s waiting for flow completion — a ~10^10x faster verdict."
)
