#!/usr/bin/env python3
"""Fabric-scale compilation: one plan for a whole pod.

Every earlier example compiles a pipeline for *one* switch.  Real
deployments are fabrics: racks of servers under Tofino leaves, a Taurus
spine above them, different apps at different tiers.  This example runs
the full fabric path end to end on a small pod (8 servers, 2 leaves,
1 spine):

1. **declare** — a :class:`~repro.fabric.Topology` (tiers, port counts,
   link speeds), the apps per tier (botnet detection on the leaves,
   IoT traffic classification on the spine), and a traffic matrix,
2. **plan** — :func:`~repro.fabric.plan_fabric` fans one compile per
   (device, app) through the distributed search layer and merges the
   winners into a deterministic :class:`~repro.fabric.FabricPlan`:
   same spec + seed, same plan bytes, for any shard count or launcher,
3. **check** — every device's models are summed against its backend's
   resource budget (an oversized placement raises
   :class:`~repro.errors.PlacementError` naming the exhausted budget),
   and the traffic matrix rolls up per-boundary oversubscription,
4. **route** — :func:`~repro.fabric.topology_dispatch` steers replayed
   packets by ingress tier (same-leaf traffic to the leaf route,
   cross-leaf to the spine) through the serving router's dispatch mode,
5. **deploy** — :func:`~repro.fabric.deploy_plan` rebuilds each plan
   pipeline bit-identically and rolls it onto a live fleet tier by
   tier through the gated fleet controller: hitless swaps, zero drops.

Watch for: byte-identical plan JSON across two independent runs, per
tier budget headroom, the worst-oversubscribed boundary, and a rollout
report with every worker upgraded and nothing dropped.

Run:  PYTHONPATH=src python examples/fabric_deployment.py
(see docs/fabric.md for the topology schema and determinism argument)
"""

from repro.datasets.botnet import generate_botnet_flows
from repro.distrib.runspec import DatasetRef
from repro.fabric import (
    Demand,
    FabricApp,
    FabricReport,
    FabricSpec,
    TierSpec,
    Topology,
    TrafficMatrix,
    deploy_plan,
    ingress_tier,
    plan_fabric,
)


def build_spec() -> FabricSpec:
    """The pod: 8 servers, 2 Tofino leaves (bd), 1 Taurus spine (tc)."""
    topology = Topology([
        TierSpec("server", count=8, ports=1, link_gbps=10.0),
        TierSpec("leaf", count=2, device="tofino", ports=8, link_gbps=40.0),
        TierSpec("spine", count=1, device="taurus", ports=4, link_gbps=100.0),
    ])
    apps = [
        FabricApp(
            "bd",
            DatasetRef.for_app("bd", n_train_flows=80, n_test_flows=2,
                               seed=13, per_packet_test=False),
            algorithms=("decision_tree",), tiers=("leaf",),
        ),
        FabricApp(
            "tc",
            DatasetRef.for_app("tc", seed=11),
            algorithms=("svm",), tiers=("spine",),
        ),
    ]
    traffic = TrafficMatrix([
        Demand("bd", "server", "server", 24.0),   # east-west, hairpins a leaf
        Demand("tc", "server", "spine", 8.0),     # north-south
    ])
    return FabricSpec(topology, apps, traffic=traffic,
                      budget=3, warmup=1, train_epochs=3, seed=0)


def main() -> None:
    spec = build_spec()

    print("== planning the fabric (one compile per device-app) ==")
    plan = plan_fabric(spec, shards=2)
    report = FabricReport.from_plan(plan)
    print(report.summary())

    print("\n== determinism: replanning must reproduce the bytes ==")
    again = plan_fabric(spec, shards=1)
    assert plan.to_json() == again.to_json(), "plan bytes diverged!"
    print(f"byte-identical across runs and shard counts "
          f"({len(plan.to_json())} bytes)")

    print("\n== topology-aware routing over a replayed trace ==")
    flows = generate_botnet_flows(40, seed=1234)
    packets = sorted((p for f in flows for p in f),
                     key=lambda p: p.timestamp)
    by_tier: dict = {}
    for packet in packets:
        tier = ingress_tier(spec.topology, packet)
        by_tier[tier] = by_tier.get(tier, 0) + 1
    for tier in sorted(by_tier):
        print(f"  {tier}: {by_tier[tier]} packets "
              f"({by_tier[tier] / len(packets):.0%})")

    print("\n== gated tier-by-tier rollout ==")
    rollout = deploy_plan(plan, packets, rate=6000.0)
    for tier, by_app in rollout["tiers"].items():
        for app, result in by_app.items():
            print(f"  {tier}:{app} -> {result['version']}: "
                  f"{'ok' if result['ok'] else result['reason']} "
                  f"(upgraded: {', '.join(result['upgraded'])})")
    print(f"  dropped: {rollout['dropped']}, "
          f"conserved: {rollout['conserved']}")
    assert rollout["ok"] and rollout["dropped"] == 0, "rollout failed"
    print("\nfabric deployed: every placement live, nothing dropped.")


if __name__ == "__main__":
    main()
