#!/usr/bin/env python3
"""Multi-application scheduling and model fusion (§3.1.1, §3.2.5, Tables 3–4).

Two capabilities of the Alchemy frontend beyond single models:

* **Composition operators** — ``m1 > m2`` (sequential) and ``m1 | m2``
  (parallel) chain applications on one switch.  Copies of the same model
  share their placed pipeline, so resource usage is invariant to the
  chaining strategy (Table 3).
* **Model fusion** — models trained on datasets with shared features can
  be fused into a single model serving both, halving resources (Table 4).

Run:  python examples/model_composition.py
"""

import repro
from repro.alchemy import DataLoader, IOMapper, Model, Platforms
from repro.core.fusion import fuse_datasets, should_fuse
from repro.datasets import load_nslkdd

SEED = 0
dataset = load_nslkdd(n_train=1600, n_test=600, seed=SEED + 7)


@DataLoader
def ad_loader():
    return dataset


ad = Model(
    {
        "optimization_metric": ["f1"],
        "algorithm": ["dnn"],
        "name": "anomaly_detection",
        "data_loader": ad_loader,
    }
)

# --- 1. app chaining: four copies, three strategies ------------------------- #
# NOTE: use ``>>`` (or parenthesize each step) for chains of three or
# more — Python parses chained ``>`` as a comparison chain and would
# silently drop stages.  ``a > b`` alone is fine.
strategies = {
    "DNN > DNN > DNN > DNN": ad >> ad >> ad >> ad,
    "DNN | DNN | DNN | DNN": ad | ad | ad | ad,
    "DNN > (DNN | DNN) > DNN": ad >> (ad | ad) >> ad,
}

platform = Platforms.Taurus().constrain(
    performance={"throughput": 1, "latency": 500},
    resources={"rows": 16, "cols": 16},
)
platform.schedule(ad)
report = repro.generate(platform, budget=10, seed=SEED)
base = report.best
print("resource scaling under different chaining strategies:")
for notation, schedule in strategies.items():
    distinct = len(schedule.distinct_models())
    print(
        f"  {notation:<26} -> {base.resources['cus'] * distinct} CUs, "
        f"{base.resources['mus'] * distinct} MUs "
        f"({len(schedule.models())} scheduled, {distinct} placed)"
    )

# --- 2. wiring models with IOMap -------------------------------------------- #
@IOMapper(["verdict", "packet_features"], ["filtered_features"])
def feed_forward(verdict, packet_features):
    """Route the first model's verdict alongside raw features downstream."""
    return {"filtered_features": (verdict, packet_features)}


routed = feed_forward(verdict=1, packet_features=[1, 2, 3])
print(f"\nIOMapper demo: routed {routed}")

# --- 3. model fusion ---------------------------------------------------------- #
part_a, part_b = dataset.split_half(seed=SEED)
print(f"\nfusion: datasets share {dataset.n_features} features "
      f"-> should_fuse = {should_fuse(part_a, part_b)}")
fused = fuse_datasets(part_a, part_b, name="ad-fused")


def run_half(name, ds, rows):
    @DataLoader
    def loader():
        return ds

    spec = Model(
        {
            "optimization_metric": ["f1"],
            "algorithm": ["dnn"],
            "name": name,
            "data_loader": loader,
        }
    )
    p = Platforms.Taurus().constrain(
        performance={"throughput": 1, "latency": 500},
        resources={"rows": rows, "cols": 16},
    )
    p.schedule(spec)
    return repro.generate(p, budget=8, seed=SEED).best


part1 = run_half("ad_part1", part_a, rows=8)   # half the switch each
part2 = run_half("ad_part2", part_b, rows=8)
whole = run_half("ad_fused", fused, rows=16)   # one fused model, full switch
print(f"  Part 1 : {part1.resources['cus']} PCUs, {part1.resources['mus']} PMUs")
print(f"  Part 2 : {part2.resources['cus']} PCUs, {part2.resources['mus']} PMUs")
print(f"  Fused  : {whole.resources['cus']} PCUs, {whole.resources['mus']} PMUs "
      "(one model serves both datasets)")
