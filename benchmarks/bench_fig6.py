"""Figure 6: botnet vs benign flow-level PL and IPT histograms.

Paper's claims: the class-averaged histograms differ — botnet packet
lengths concentrate in the small bins while benign P2P mass spreads into
large-packet bins, and botnet inter-arrival times populate the long-gap
bins that benign traffic barely touches.
"""

import numpy as np

from repro.eval.experiments import format_fig6, run_fig6


def test_fig6_histograms(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig6(n_flows=400, seed=0), rounds=1, iterations=1
    )
    record_result("fig6", format_fig6(result),
                  config={"n_flows": 400, "seed": 0},
                  metrics={key: result[key] for key in
                           ("benign_pl", "malicious_pl",
                            "benign_ipt", "malicious_ipt")})
    ben_pl = np.array(result["benign_pl"])
    mal_pl = np.array(result["malicious_pl"])
    ben_ipt = np.array(result["benign_ipt"])
    mal_ipt = np.array(result["malicious_ipt"])
    # Botnet packets concentrate in the small-size bins (< 320 B).
    assert mal_pl[:5].sum() > 0.8 * mal_pl.sum()
    # Benign P2P puts substantial mass in the large-packet bins.
    assert ben_pl[5:].sum() > 0.4 * ben_pl.sum()
    # Botnet flows populate the long-gap IPT bins far more than benign.
    assert mal_ipt[1:].sum() > 2.0 * ben_ipt[1:].sum()
    # The histograms are visibly different overall (L1 distance).
    assert np.abs(ben_pl / ben_pl.sum() - mal_pl / mal_pl.sum()).sum() > 0.5
