"""Figure 4: BO regret plot for the anomaly-detection DNN.

Paper's claims: initial results are poor, the search stabilizes quickly,
and later iterations trade off exploitation against exploration (spikes).
We assert the incumbent improves over the random warmup and that the
search ends at a strong F1.
"""

import numpy as np

from repro.eval.experiments import format_fig4, run_fig4

WARMUP = 5


def test_fig4_regret(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig4(budget=20, seed=0, quick=True), rounds=1, iterations=1
    )
    record_result("fig4", format_fig4(result),
                  config={"budget": 20, "seed": 0, "quick": True},
                  metrics={"f1_scores": result["f1_scores"],
                           "incumbent": result["incumbent"],
                           "feasible": result["feasible"]})
    scores = result["f1_scores"]
    feasible = result["feasible"]
    incumbent = [v for v in result["incumbent"] if v is not None]
    assert len(scores) == 20
    # The incumbent curve is monotone non-decreasing...
    assert all(a <= b + 1e-9 for a, b in zip(incumbent, incumbent[1:]))
    # ...and the final model improves on the best random-warmup draw.
    warmup_best = max(
        s for s, ok in zip(scores[:WARMUP], feasible[:WARMUP]) if ok
    )
    assert incumbent[-1] >= warmup_best
    assert incumbent[-1] > 80.0  # strong final F1 (paper plateaus ~80)
    # Exploration continues after stabilization: later iterations still
    # sample configs away from the incumbent.
    later = np.array(scores[WARMUP:])
    assert later.std() > 0.0
