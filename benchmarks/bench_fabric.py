#!/usr/bin/env python3
"""Fabric planning and rollout: the three gates CI holds the plan to.

A fabric plan is only trustworthy if it is *reproducible*, *honest
about budgets*, and *deployable without loss*.  This bench asserts all
three on the canonical 2-leaf/1-spine pod (the committed
``examples/fabric_pod.json`` shape):

1. **plan determinism** — the same spec + seed must produce
   byte-identical plan JSON across independent runs, shard counts,
   launcher types (in-process vs subprocess), and an injected
   worker crash absorbed by retries (``REPRO_CHAOS_KILL`` hard-kills
   one unit's first attempt; the replan must not move a byte).
2. **placement** — two detectors that each fit a 4-MAT leaf alone but
   not together must raise :class:`~repro.errors.PlacementError` naming
   the device and the exhausted resource (the failure only fabric-level
   budget summing can catch); the healthy plan must report positive
   headroom on every tier.
3. **deploy** — rolling the plan onto a live fleet (one worker per
   placement, looping replay, gated tier-by-tier rollout) must upgrade
   every worker with **zero drops** and full row conservation.

Run:  PYTHONPATH=src python benchmarks/bench_fabric.py [--smoke]

``--smoke`` shrinks the search budget and the replay; every gate holds
in both modes, so CI runs it as a blocking job.  Results land in
``benchmarks/results/fabric.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_json_result  # noqa: E402

from repro.datasets.botnet import generate_botnet_flows
from repro.distrib.launchers import SubprocessLauncher
from repro.distrib.runspec import DatasetRef
from repro.distrib.worker import CHAOS_KILL_ENV
from repro.errors import PlacementError
from repro.fabric import (
    Demand,
    FabricApp,
    FabricReport,
    FabricSpec,
    TierSpec,
    Topology,
    TrafficMatrix,
    deploy_plan,
    plan_fabric,
)


def build_spec(smoke: bool, leaf_resources: "dict | None" = None,
               second_leaf_app: bool = False) -> FabricSpec:
    topology = Topology([
        TierSpec("server", count=8, ports=1, link_gbps=10.0),
        TierSpec("leaf", count=2, device="tofino", ports=8, link_gbps=40.0,
                 resources=leaf_resources),
        TierSpec("spine", count=1, device="taurus", ports=4, link_gbps=100.0),
    ])
    apps = [
        FabricApp(
            "bd",
            DatasetRef.for_app("bd", n_train_flows=40 if smoke else 80,
                               n_test_flows=2, seed=13,
                               per_packet_test=False),
            algorithms=("decision_tree",), tiers=("leaf",),
        ),
        FabricApp(
            "tc", DatasetRef.for_app("tc", seed=11),
            algorithms=("svm",), tiers=("spine",),
        ),
    ]
    if second_leaf_app:
        # A second detector sharing the leaves: each compiles within the
        # per-model envelope, but the *sum* must clear the device budget
        # — the case only fabric-level placement can reject.
        apps.append(FabricApp(
            "bd2",
            DatasetRef.for_app("bd", n_train_flows=40 if smoke else 80,
                               n_test_flows=2, seed=17,
                               per_packet_test=False),
            algorithms=("decision_tree",), tiers=("leaf",),
        ))
    traffic = TrafficMatrix([
        Demand("bd", "server", "server", 24.0),
        Demand("tc", "server", "spine", 8.0),
    ])
    return FabricSpec(topology, apps, traffic=traffic,
                      budget=2 if smoke else 3, warmup=1,
                      train_epochs=3, seed=0)


def gate_determinism(spec: FabricSpec, scratch: str) -> dict:
    """Gate 1: plan bytes invariant to runs, shards, launchers, crashes."""
    t0 = time.time()
    reference = plan_fabric(spec, shards=1).to_json()

    rerun = plan_fabric(spec, shards=1).to_json()
    assert rerun == reference, "second identical run moved plan bytes"

    sharded = plan_fabric(spec, shards=2).to_json()
    assert sharded == reference, "shard count moved plan bytes"

    sub = plan_fabric(
        spec, shards=2, launcher=SubprocessLauncher(timeout=300),
        shard_dir=os.path.join(scratch, "sub"),
    ).to_json()
    assert sub == reference, "subprocess launcher moved plan bytes"

    marker = os.path.join(scratch, "chaos-marker")
    os.environ[CHAOS_KILL_ENV] = f"unit-0000.a0@{marker}"
    try:
        chaotic = plan_fabric(
            spec, shards=2, launcher=SubprocessLauncher(timeout=300),
            shard_dir=os.path.join(scratch, "chaos"), max_retries=2,
        ).to_json()
    finally:
        del os.environ[CHAOS_KILL_ENV]
    assert os.path.exists(marker), "the injected crash never fired"
    assert chaotic == reference, "a retried crash moved plan bytes"

    print(f"  byte-identical across 2 runs, 2 shard counts, 2 launchers, "
          f"and 1 hard-killed worker ({len(reference)} bytes)")
    return {"plan_bytes": len(reference),
            "determinism_wall_s": round(time.time() - t0, 3)}


def gate_placement(spec: FabricSpec, smoke: bool) -> dict:
    """Gate 2: healthy headroom; an over-budget leaf fails loudly."""
    plan = plan_fabric(spec)
    report = FabricReport.from_plan(plan)
    headroom = report.tier_headroom()
    for tier, room in headroom.items():
        assert all(v > 0 for v in room.values()), \
            f"tier {tier} reports no headroom on a healthy plan: {room}"

    tight = build_spec(smoke, leaf_resources={"mats": 4},
                       second_leaf_app=True)
    try:
        plan_fabric(tight)
    except PlacementError as exc:
        message = str(exc)
        assert "leaf0" in message and "mats" in message, message
        print(f"  over-budget placement refused: {message}")
    else:
        raise AssertionError("two detectors on a 4-MAT leaf were not "
                             "rejected")
    return {
        "leaf_headroom_mats": headroom["leaf"].get("mats"),
        "worst_oversubscription":
            report.worst_oversubscription()["oversubscription"],
    }


def gate_deploy(spec: FabricSpec, smoke: bool) -> dict:
    """Gate 3: gated rollout upgrades everything, drops nothing."""
    plan = plan_fabric(spec)
    flows = generate_botnet_flows(30 if smoke else 60, seed=1234)
    packets = sorted((p for f in flows for p in f),
                     key=lambda p: p.timestamp)
    t0 = time.time()
    rollout = deploy_plan(plan, packets, rate=6000.0)
    wall = time.time() - t0
    assert rollout["ok"], f"rollout aborted: {rollout['tiers']}"
    assert rollout["dropped"] == 0, \
        f"rollout dropped {rollout['dropped']} packets"
    assert rollout["conserved"], "enqueued rows were not all inferred"
    upgraded = [w for w, doc in rollout["workers"].items()
                if doc["version"].startswith("plan-")]
    assert len(upgraded) == len(plan.devices), rollout["workers"]
    packets_served = sum(doc["packets"]
                         for doc in rollout["workers"].values())
    print(f"  {len(upgraded)} workers upgraded, 0 dropped, "
          f"{packets_served} packets served in {wall:.1f} s")
    return {"workers_upgraded": len(upgraded),
            "packets_served": packets_served,
            "deploy_wall_s": round(wall, 3)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small search budget + short replay (CI mode)")
    args = parser.parse_args()

    import tempfile

    spec = build_spec(args.smoke)
    metrics: dict = {}
    with tempfile.TemporaryDirectory(prefix="bench-fabric-") as scratch:
        print("== gate 1: plan determinism ==")
        metrics.update(gate_determinism(spec, scratch))
        print("== gate 2: placement budgets ==")
        metrics.update(gate_placement(spec, args.smoke))
        print("== gate 3: lossless gated rollout ==")
        metrics.update(gate_deploy(spec, args.smoke))

    path = write_json_result(
        "fabric",
        config={"smoke": args.smoke, "budget": spec.budget,
                "devices": len(spec.topology.devices())},
        metrics=metrics,
    )
    print(f"all fabric gates passed -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
