"""Table 2: hand-tuned baselines vs Homunculus-generated models (Taurus).

Paper's claims to reproduce (shape, not absolute numbers):
  * Homunculus beats every baseline's F1 (AD +12, TC +7.7, BD +2.8 points),
  * Hom-AD / Hom-TC use *more* CUs+MUs than their baselines (platform-aware
    models spend the available resources),
  * Hom-BD beats its baseline with a *smaller* parameter count.
"""

import pytest

from repro.eval.experiments import format_table2, run_table2

BUDGET = 12
SEED = 0


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2(budget=BUDGET, seed=SEED, quick=True)


def test_table2(benchmark, table2_rows, record_result):
    rows = benchmark.pedantic(
        lambda: table2_rows, rounds=1, iterations=1
    )
    record_result("table2", format_table2(rows),
                  config={"budget": BUDGET, "seed": SEED, "quick": True},
                  metrics={"rows": rows})
    by_key = {(r["app"], r["variant"]): r for r in rows}
    for app in ("ad", "tc", "bd"):
        base = by_key[(app, "baseline")]
        hom = by_key[(app, "homunculus")]
        # Homunculus must win on F1 for every application.
        assert hom["f1"] > base["f1"], f"{app}: {hom['f1']} <= {base['f1']}"
    # The AD win comes from spending more of the platform (stable across
    # seeds; for TC/BD the search sometimes wins with a *smaller* model, so
    # resource direction is reported rather than asserted — see
    # EXPERIMENTS.md).
    assert by_key[("ad", "homunculus")]["cus"] > by_key[("ad", "baseline")]["cus"]
