#!/usr/bin/env python3
"""Closed-loop adaptation: drift-triggered retrain-and-redeploy.

Two legs over the reproducible traffic-shift scenario
(:mod:`repro.drift.scenario` — the botnet migrates its C2 channel into
benign-P2P territory, so the v0 model's decision boundary goes stale):

1. **recovery** — one worker serves the shifting stream with the full
   :class:`AdaptationLoop` attached.  The bench records serving accuracy
   over the capture window just before the shift, lets the loop confirm
   drift, retrain on captured traffic, and deploy through the regression
   gate, then measures how many post-swap batches it takes for window
   accuracy to climb back within ``RECOVERY_MARGIN`` (2%) of the
   pre-shift level.  Gates: exactly one deploy, recovery within
   ``RECOVERY_BATCH_BOUND`` post-swap batches, zero drops in block mode,
   and ``enqueued == packets + dropped`` on the worker.
2. **chaos bit-identity** — the loop's retrain stage run twice on the
   same captured snapshot: once clean (in-process launcher), once with
   ``REPRO_CHAOS_KILL`` killing a search worker mid-task (work-queue
   launcher, ``max_retries=2``).  The merged winner — algorithm, config,
   objective, and the rebuilt pipeline's predictions — must be
   bit-identical, i.e. a crash costs a retry, never the result.

Run:  PYTHONPATH=src python benchmarks/bench_adaptation.py [--smoke]

``--smoke`` shrinks the traces and search budget; every correctness
gate (recovery margin, conservation, zero drops, bit-identity) holds in
both modes, so CI runs it as a blocking job.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile

# Keep drift.* spans on and the trace sink under results/.
os.environ["REPRO_OBS"] = "1"
os.environ.setdefault("REPRO_OBS_DIR", os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "obs"))

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_json_result  # noqa: E402

import numpy as np

from repro.control import FleetController, FleetWorker
from repro.distrib.driver import run_sharded
from repro.distrib.launchers import InProcessLauncher, WorkQueueLauncher
from repro.distrib.worker import CHAOS_KILL_ENV
from repro.drift import AdaptationLoop, DriftMonitor, TrafficCapture, rebuild_winner
from repro.drift.scenario import (
    PHASE_PRE,
    PHASE_SHIFTED,
    adaptation_spec_factory,
    phase_trace,
    shifting_traffic,
    train_initial_pipeline,
)
from repro.netsim.features import PACKET_FEATURE_NAMES, packet_features
from repro.runtime import PacketFeatureExtractor
from repro.serving import AsyncStreamEngine

SEED = 13
BATCH_SIZE = 64
RATE_PPS = 4000.0
SHIFT_AFTER_S = 1.5
#: Accuracy over this many newest captured rows is the "window accuracy"
#: the recovery gate compares — small enough to react within a few
#: batches, large enough to be statistically meaningful.
ACCURACY_WINDOW = 128
#: Post-swap window accuracy must come back within this much of the
#: pre-shift level (the issue's 2% recovery target).
RECOVERY_MARGIN = 0.02
#: ... and must do so within this many post-swap batches.
RECOVERY_BATCH_BOUND = 40
DEADLINE_S = 120.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


async def run_recovery_leg(args, lines: list, failures: list) -> dict:
    n_v0_train = 50 if args.smoke else 80
    n_trace_flows = 50 if args.smoke else 80
    budget = 2 if args.smoke else 3
    epochs = 8 if args.smoke else 10

    v0, _ = train_initial_pipeline(seed=SEED, n_train_flows=n_v0_train,
                                   n_test_flows=20)
    pre = phase_trace(n_trace_flows, PHASE_PRE, seed=SEED + 101)
    post = phase_trace(n_trace_flows, PHASE_SHIFTED, seed=SEED + 202)

    stop = asyncio.Event()
    capture = TrafficCapture(capacity=4096,
                             feature_names=PACKET_FEATURE_NAMES)
    engine = AsyncStreamEngine(
        v0, PacketFeatureExtractor(), batch_size=BATCH_SIZE,
        queue_depth=512, drop_policy="block", capture=capture,
    )
    worker = FleetWorker("w0", engine, version="v0")
    controller = FleetController([worker])
    monitor = DriftMonitor(window=192, min_window=64,
                           feature_names=PACKET_FEATURE_NAMES)
    loop = AdaptationLoop(
        controller, monitor,
        adaptation_spec_factory(budget=budget, seed=SEED,
                                train_epochs=epochs),
        shards=2, max_retries=1, check_interval_s=0.2,
    )

    pre_shift_accuracy = []

    def on_shift():
        # Serving accuracy the moment the distribution moves: the
        # baseline the retrained pipeline must recover to.
        acc = capture.accuracy(last=ACCURACY_WINDOW)
        pre_shift_accuracy.append(acc)

    worker.attach(asyncio.create_task(engine.run(
        shifting_traffic(stop, pre, post, rate=RATE_PPS,
                         shift_after_s=SHIFT_AFTER_S, on_shift=on_shift))))
    loop_task = asyncio.create_task(loop.run(stop))

    clock = asyncio.get_running_loop()
    deadline = clock.time() + DEADLINE_S
    batches_at_swap = None
    recovered_after = None
    target = None
    try:
        while clock.time() < deadline:
            if batches_at_swap is None and loop.deployed >= 1:
                batches_at_swap = engine.stats.summary()["batches"]
                base = pre_shift_accuracy[0] if pre_shift_accuracy else 1.0
                target = (base if base is not None else 1.0) - RECOVERY_MARGIN
            if batches_at_swap is not None:
                elapsed = engine.stats.summary()["batches"] - batches_at_swap
                acc = capture.accuracy(last=ACCURACY_WINDOW)
                if acc is not None and acc >= target:
                    recovered_after = elapsed
                    break
                if elapsed > RECOVERY_BATCH_BOUND:
                    break
            await asyncio.sleep(0.05)
    finally:
        stop.set()
        await asyncio.gather(worker.task, return_exceptions=True)
        await loop_task

    summary = engine.stats.summary()
    base = pre_shift_accuracy[0] if pre_shift_accuracy else None
    final_acc = capture.accuracy(last=ACCURACY_WINDOW)
    lines.append(
        f"pre-shift window accuracy {base if base is not None else 'n/a'}; "
        f"drift events {len(monitor.events)}, retrains {len(loop.events)} "
        f"({loop.deployed} deployed, {loop.rolled_back} rolled back, "
        f"{loop.failed} failed)")

    if loop.deployed != 1:
        failures.append(f"expected exactly 1 deploy, got {loop.deployed} "
                        f"(events: {[e.get('outcome') for e in loop.events]})")
    if worker.version != "adapt-1":
        failures.append(f"worker finished on {worker.version}, not adapt-1")
    if recovered_after is None:
        failures.append(
            f"window accuracy never recovered to within {RECOVERY_MARGIN:.0%}"
            f" of pre-shift ({base}) inside {RECOVERY_BATCH_BOUND} post-swap"
            f" batches (last seen {final_acc})")
    else:
        lines.append(
            f"recovered: window accuracy {final_acc:.3f} >= "
            f"{target:.3f} after {recovered_after} post-swap batches "
            f"(bound {RECOVERY_BATCH_BOUND})")
    if summary["dropped"] != 0:
        failures.append(f"dropped {summary['dropped']} packets in block mode")
    if summary["enqueued"] != summary["packets"] + summary["dropped"]:
        failures.append(
            f"counters not conserved ({summary['enqueued']} != "
            f"{summary['packets']} + {summary['dropped']})")
    lines.append(
        f"[w0] {summary['packets']} packets, {summary['dropped']} dropped, "
        f"{summary['swaps']} swaps, {summary['batches']} batches, "
        f"conservation {'ok' if summary['enqueued'] == summary['packets'] + summary['dropped'] else 'VIOLATED'}")
    return {
        "pre_shift_accuracy": base,
        "final_accuracy": final_acc,
        "recovered_after_batches": recovered_after,
        "deployed": loop.deployed,
        "packets": summary["packets"],
        "dropped": summary["dropped"],
        "swaps": summary["swaps"],
    }


def _retrain_once(launcher, shard_dir: str, budget: int, epochs: int,
                  max_retries: int):
    """The loop's retrain stage, run synchronously on a fixed shifted
    capture — the deterministic unit the bit-identity gate compares."""
    packets, labels = phase_trace(40, PHASE_SHIFTED, seed=SEED)
    capture = TrafficCapture(capacity=4096,
                             feature_names=PACKET_FEATURE_NAMES)
    capture.observe_batch([packet_features(p) for p in packets], labels,
                          [0] * len(packets),
                          times=[p.timestamp for p in packets])
    ref = capture.snapshot(os.path.join(shard_dir, "cap.npz"))
    spec = adaptation_spec_factory(budget=budget, seed=SEED,
                                   train_epochs=epochs)(ref)
    out = run_sharded(spec, shards=2, launcher=launcher,
                      shard_dir=os.path.join(shard_dir, "shards"),
                      max_retries=max_retries)
    pipeline, best = rebuild_winner(spec, out)
    return pipeline, best, out, ref


def run_chaos_leg(args, lines: list, failures: list) -> dict:
    budget = 2 if args.smoke else 3
    epochs = 6 if args.smoke else 8
    with tempfile.TemporaryDirectory(prefix="bench-adapt-") as tmp:
        clean_pipe, clean_best, _, ref = _retrain_once(
            InProcessLauncher(), os.path.join(tmp, "clean"),
            budget, epochs, max_retries=1)

        marker = os.path.join(tmp, "killed")
        os.environ[CHAOS_KILL_ENV] = f"unit-0000@{marker}"
        try:
            chaos_pipe, chaos_best, chaos_out, _ = _retrain_once(
                WorkQueueLauncher(drainers=2, mode="thread", timeout=300,
                                  stale_after=None),
                os.path.join(tmp, "chaos"), budget, epochs, max_retries=2)
        finally:
            del os.environ[CHAOS_KILL_ENV]

        if not os.path.exists(marker):
            failures.append("chaos kill never fired")
        ft = chaos_out.stats["fault_tolerance"]
        lines.append(
            f"chaos retrain: {ft['task_launches']} launches for "
            f"{ft['tasks']} tasks ({ft['retries']} retries)")

        identical = (
            chaos_best.algorithm == clean_best.algorithm
            and chaos_best.best_config == clean_best.best_config
            and chaos_best.objective == clean_best.objective
        )
        test_x = ref.materialize().test_x
        predictions_equal = bool(np.array_equal(
            clean_pipe.predict(test_x), chaos_pipe.predict(test_x)))
        if not identical:
            failures.append(
                f"chaos retrain diverged: {chaos_best.algorithm}/"
                f"{chaos_best.best_config}/{chaos_best.objective} vs clean "
                f"{clean_best.algorithm}/{clean_best.best_config}/"
                f"{clean_best.objective}")
        if not predictions_equal:
            failures.append("chaos-rebuilt pipeline predictions differ "
                            "from crash-free rebuild")
        if identical and predictions_equal:
            lines.append(
                f"bit-identity: winner {clean_best.algorithm} "
                f"objective {clean_best.objective:.4f}, predictions equal "
                f"on {len(test_x)} test rows")
        return {
            "identical_winner": identical,
            "predictions_equal": predictions_equal,
            "retries": ft["retries"],
            "task_launches": ft["task_launches"],
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller traces and budget (same gates)")
    args = parser.parse_args(argv)

    lines = [
        "Adaptation benchmark — drift-triggered retrain-and-redeploy",
        "-" * 74,
    ]
    failures: list = []
    recovery = asyncio.run(run_recovery_leg(args, lines, failures))
    lines.append("")
    chaos = run_chaos_leg(args, lines, failures)

    verdict = "PASS" if not failures else "FAIL: " + "; ".join(failures)
    lines += ["", verdict]
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "adaptation.txt")
    with open(out_path, "w") as handle:
        handle.write(text + "\n")
    json_path = write_json_result(
        "adaptation",
        config={"smoke": args.smoke, "batch_size": BATCH_SIZE,
                "rate_pps": RATE_PPS, "shift_after_s": SHIFT_AFTER_S,
                "recovery_margin": RECOVERY_MARGIN,
                "recovery_batch_bound": RECOVERY_BATCH_BOUND},
        metrics={"verdict": verdict, "failures": failures,
                 "recovery": recovery, "chaos": chaos},
    )
    print(f"(written to {out_path}; summary {json_path})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
