"""Table 5: FPGA testbed resource consumption and power.

Paper's claims to reproduce:
  * every model adds LUT/FF/power on top of the loopback shell,
  * BRAM stays at the shell level for all models (parameters live in LUTs),
  * Hom-AD / Hom-TC draw more than their baselines (bigger models);
    Hom-BD draws less than Base-BD (smaller parameter count).
"""

import pytest

from repro.eval.experiments import format_table5, run_table2, run_table5

BUDGET = 12
SEED = 0


@pytest.fixture(scope="module")
def table5_rows():
    table2_rows = run_table2(budget=BUDGET, seed=SEED, quick=True)
    return run_table5(table2_rows=table2_rows, seed=SEED, quick=True)


def test_table5(benchmark, table5_rows, record_result):
    rows = benchmark.pedantic(lambda: table5_rows, rounds=1, iterations=1)
    record_result("table5", format_table5(rows),
                  config={"budget": BUDGET, "seed": SEED, "quick": True},
                  metrics={"rows": rows})
    by_app = {row["application"]: row for row in rows}
    shell = by_app["Loopback"]
    models = [row for row in rows if row["application"] != "Loopback"]
    # Every model adds logic and power on top of the shell.
    for row in models:
        assert row["lut_pct"] > shell["lut_pct"]
        assert row["ff_pct"] > shell["ff_pct"]
        assert row["power_w"] > shell["power_w"]
        # BRAM is shell-dominated: constant across models.
        assert row["bram_pct"] == shell["bram_pct"]
    # Bigger generated models draw more than their baselines (AD/TC).
    assert by_app["Hom-AD"]["power_w"] > by_app["Base-AD"]["power_w"]
    assert by_app["Hom-TC"]["power_w"] > by_app["Base-TC"]["power_w"]
