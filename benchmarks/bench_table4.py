"""Table 4: model fusion.

Paper's claim: two models over halves of the AD dataset each cost roughly
the same as the *single fused model* serving both — fusion halves the
total resource bill (48/83 fused vs 44/81 + 51/96 split in the paper).
"""

from repro.eval.experiments import format_table4, run_table4


def test_table4(benchmark, record_result):
    rows = benchmark.pedantic(
        lambda: run_table4(budget=8, seed=0, quick=True), rounds=1, iterations=1
    )
    record_result("table4", format_table4(rows),
                  config={"budget": 8, "seed": 0, "quick": True},
                  metrics={"rows": rows})
    part1, part2, fused = rows
    assert fused["application"] == "AD: Fused"
    # Fusion must cost far less than the sum of the parts...
    assert fused["pcus"] < part1["pcus"] + part2["pcus"]
    assert fused["pmus"] < part1["pmus"] + part2["pmus"]
    # ...and land in the neighbourhood of a single part (paper: ~average).
    assert fused["pcus"] <= 2.0 * max(part1["pcus"], part2["pcus"])
