"""§5.1.1: reaction time — per-packet partial histograms.

Paper's claims: a model trained on full-flow markers already classifies
partial (per-packet) markers usefully after a handful of packets, so the
data plane can react in nanoseconds instead of waiting 3 600 s for the
flowmarker to complete.
"""

from repro.eval.experiments import format_reaction_time, run_reaction_time


def test_reaction_time(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_reaction_time(seed=0, quick=True, max_packets=16),
        rounds=1,
        iterations=1,
    )
    record_result("reaction_time", format_reaction_time(result),
                  config={"seed": 0, "quick": True, "max_packets": 16},
                  metrics={"curve": result["curve"],
                           "per_packet_latency_ns":
                               result["per_packet_latency_ns"],
                           "flow_completion_latency_s":
                               result["flow_completion_latency_s"]})
    curve = result["curve"]
    assert len(curve) >= 8
    # Already useful after the first packet...
    assert curve[0]["f1"] > 60.0
    # ...and clearly better once a few packets have been seen.
    late = max(point["f1"] for point in curve[4:])
    assert late > curve[0]["f1"]
    # The reaction-time gap the paper highlights: ns vs an hour.
    assert result["per_packet_latency_ns"] < 1000.0
    assert result["flow_completion_latency_s"] == 3600.0
