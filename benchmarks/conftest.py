"""Shared benchmark plumbing.

Every bench regenerates one table/figure of the paper: it runs the
experiment through ``pytest-benchmark`` (one round — these are end-to-end
compiler runs, not microseconds-level kernels) and writes the formatted
rows to ``benchmarks/results/`` so the artifacts survive the run.

Alongside every human-readable ``<name>.txt`` table, each bench also
emits a machine-readable ``<name>.json`` summary — one schema for every
bench, so dashboards and regression tooling can diff runs without
scraping tables::

    {"name": ..., "config": {...}, "metrics": {...}, "host": {...}}

``write_json_result`` is importable by the standalone (non-pytest)
benches too; pytest benches get it via the ``record_result`` fixture's
``config=``/``metrics=`` keywords.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def host_info() -> dict:
    """Where and when this bench ran — enough to group comparable runs."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "timestamp": time.time(),
    }


def _jsonable(value):
    """Coerce bench payloads (numpy scalars/arrays, tuples) to JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):  # numpy array
        return _jsonable(value.tolist())
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def write_json_result(name: str, config: "dict | None" = None,
                      metrics: "dict | None" = None,
                      results_dir: str = RESULTS_DIR) -> str:
    """Write the uniform machine-readable summary; returns its path."""
    os.makedirs(results_dir, exist_ok=True)
    doc = {
        "name": name,
        "config": _jsonable(config or {}),
        "metrics": _jsonable(metrics or {}),
        "host": host_info(),
    }
    path = os.path.join(results_dir, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_bench_json(results_dir):
    """JSON summary for a pytest-benchmark kernel (timing stats only)."""

    def write(name: str, benchmark, **config) -> str:
        stats = benchmark.stats.stats
        return write_json_result(
            name, config=config,
            metrics={
                "mean_s": stats.mean,
                "median_s": stats.median,
                "min_s": stats.min,
                "max_s": stats.max,
                "stddev_s": stats.stddev,
                "rounds": stats.rounds,
            },
            results_dir=results_dir,
        )

    return write


@pytest.fixture
def record_result(results_dir):
    """Write results/<name>.txt (+ the .json summary) and echo the table."""

    def write(name: str, text: str, config: "dict | None" = None,
              metrics: "dict | None" = None) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        json_path = write_json_result(name, config, metrics,
                                      results_dir=results_dir)
        print(f"\n=== {name} ===\n{text}\n(written to {path}; "
              f"summary {json_path})")

    return write
