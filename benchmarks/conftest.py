"""Shared benchmark plumbing.

Every bench regenerates one table/figure of the paper: it runs the
experiment through ``pytest-benchmark`` (one round — these are end-to-end
compiler runs, not microseconds-level kernels) and writes the formatted
rows to ``benchmarks/results/`` so the artifacts survive the run.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a formatted experiment table to results/<name>.txt and echo it."""

    def write(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n=== {name} ===\n{text}\n(written to {path})")

    return write
