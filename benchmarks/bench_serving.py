#!/usr/bin/env python3
"""Sync vs async serving on the botnet flowmarker workload.

Three legs, one workload (per-packet botnet detection over interleaved
P2P flows, conversation state in a :class:`FlowmarkerTracker`):

1. **raw** — functional simulation only (``predict`` returns
   instantly).  There is nothing to overlap, so this leg just shows the
   async engine's host overhead is near parity with the sync loop.
2. **device overlap** — both paths drive the *same*
   :class:`TimedPipeline` device model (a per-batch host<->device round
   trip, as when the model runs on the switch and the host talks to its
   agent).  The sync processor serializes extract -> service; the async
   engine overlaps extraction with up to ``--infer-workers`` batches in
   flight, which is where the >= 1.5x throughput comes from.  Block
   mode: predictions and stream counters stay bit-identical to sync.
3. **latency bound** — paced replay with ``--max-latency-us``
   deadline micro-batching: measured p99 must respect the deadline plus
   device service and scheduling slack.

Run:  PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

``--smoke`` shrinks the workload and skips the hard assertions (CI runs
it as a non-blocking job; the full run is the reportable benchmark).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.backends.taurus import TaurusBackend
from repro.datasets import load_botnet
from repro.datasets.botnet import flow_label, generate_botnet_flows
from repro.eval.baselines import train_baseline_dnn
from repro.runtime import FlowmarkerTracker, StreamProcessor
from repro.serving import AsyncStreamEngine, TimedPipeline, replay

#: Emulated host<->device round trip per inference batch (seconds).  A
#: PCIe/agent RPC to the switch is hundreds of microseconds to a few
#: milliseconds; both sync and async legs pay exactly this model.
DEVICE_PER_BATCH_S = 1.5e-3
BATCH_SIZE = 256
INFER_WORKERS = 4
MAX_LATENCY_US = 2000.0
SPEEDUP_TARGET = 1.5

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def build_workload(n_train_flows: int, n_stream_flows: int, seed: int = 13):
    dataset = load_botnet(n_train_flows=n_train_flows, n_test_flows=2,
                          seed=seed, per_packet_test=False)
    net, scaler = train_baseline_dnn("bd", dataset, seed=0)
    pipeline = TaurusBackend().compile_model(net, scaler=scaler, name="bd")
    flows = generate_botnet_flows(n_stream_flows, seed=99)
    tagged = []
    for flow in flows:
        label = flow_label(flow)
        for packet in flow:
            tagged.append((packet.timestamp, packet, label))
    tagged.sort(key=lambda item: item[0])
    packets = [item[1] for item in tagged]
    labels = [item[2] for item in tagged]
    return pipeline, packets, labels


def tracker():
    return FlowmarkerTracker(max_conversations=4096)


def run_sync(pipeline, packets, labels):
    processor = StreamProcessor(pipeline, tracker(), batch_size=BATCH_SIZE)
    start = time.perf_counter()
    predictions = processor.process(packets, labels)
    return time.perf_counter() - start, predictions, processor.stats


def run_async(pipeline, packets, labels, infer_workers=INFER_WORKERS):
    engine = AsyncStreamEngine(
        pipeline, tracker(), batch_size=BATCH_SIZE,
        drop_policy="block", infer_workers=infer_workers,
    )
    start = time.perf_counter()
    predictions = engine.process(packets, labels)
    return time.perf_counter() - start, predictions, engine.stats


def best_of(fn, repeats: int):
    best = None
    for _ in range(repeats):
        result = fn()
        if best is None or result[0] < best[0]:
            best = result
    return best


def stream_counters(stats):
    return (stats.packets, stats.class_counts, stats.correct,
            stats.labeled, stats.confusion)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, no hard assertions")
    args = parser.parse_args(argv)

    if args.smoke:
        n_train, n_stream, repeats = 60, 300, 1
    else:
        n_train, n_stream, repeats = 150, 1500, 3
    pipeline, packets, labels = build_workload(n_train, n_stream)
    lines = [
        f"Serving benchmark — botnet flowmarker workload "
        f"({len(packets)} packets, batch={BATCH_SIZE}, "
        f"device={DEVICE_PER_BATCH_S * 1e3:.1f} ms/batch, "
        f"infer_workers={INFER_WORKERS})",
        "-" * 74,
    ]
    failures = []

    # Leg 1: raw functional simulation (host overhead parity check).
    sync_s, sync_pred, sync_stats = best_of(
        lambda: run_sync(pipeline, packets, labels), repeats)
    async_s, async_pred, async_stats = best_of(
        lambda: run_async(pipeline, packets, labels), repeats)
    raw_ratio = sync_s / async_s
    identical = np.array_equal(np.asarray(sync_pred), np.asarray(async_pred))
    lines += [
        f"{'raw sync (no device model)':<44}{sync_s * 1e3:>10.1f} ms",
        f"{'raw async':<44}{async_s * 1e3:>10.1f} ms   ({raw_ratio:.2f}x)",
    ]
    if not identical:
        failures.append("raw leg: async predictions diverged from sync")

    # Leg 2: device service overlap (the headline speedup).
    timed_sync_s, ts_pred, ts_stats = best_of(
        lambda: run_sync(TimedPipeline(pipeline, per_batch_s=DEVICE_PER_BATCH_S),
                         packets, labels), repeats)
    timed_async_s, ta_pred, ta_stats = best_of(
        lambda: run_async(TimedPipeline(pipeline, per_batch_s=DEVICE_PER_BATCH_S),
                          packets, labels), repeats)
    speedup = timed_sync_s / timed_async_s
    bit_identical = (
        np.array_equal(np.asarray(ts_pred), np.asarray(ta_pred))
        and stream_counters(ts_stats) == stream_counters(ta_stats)
    )
    lines += [
        f"{'device sync (serialized service)':<44}{timed_sync_s * 1e3:>10.1f} ms",
        f"{'device async (batches in flight)':<44}{timed_async_s * 1e3:>10.1f} ms"
        f"   ({speedup:.2f}x)",
        f"block-mode predictions + counters bit-identical: {bit_identical}",
        f"async throughput: {len(packets) / timed_async_s:,.0f} pkt/s "
        f"(sync {len(packets) / timed_sync_s:,.0f} pkt/s)",
    ]
    if not bit_identical:
        failures.append("device leg: block mode was not bit-identical")
    if not args.smoke and speedup < SPEEDUP_TARGET:
        failures.append(
            f"device leg: speedup {speedup:.2f}x < target {SPEEDUP_TARGET}x")

    # Leg 3: deadline micro-batching under paced replay.  Light load on
    # purpose (a couple of thousand packets per second): the deadline is
    # what bounds latency here, not the batch size.
    subset_n = min(len(packets), 3000 if args.smoke else 6000)
    sub_packets, sub_labels = packets[:subset_n], labels[:subset_n]
    span = sub_packets[-1].timestamp - sub_packets[0].timestamp
    target_duration = 1.5 if args.smoke else 2.4
    speed = max(1.0, span / target_duration)
    engine = AsyncStreamEngine(
        TimedPipeline(pipeline, per_batch_s=DEVICE_PER_BATCH_S / 3),
        tracker(),
        batch_size=BATCH_SIZE,
        max_latency=MAX_LATENCY_US * 1e-6,
        drop_policy="block",
        infer_workers=INFER_WORKERS,
    )
    import asyncio

    asyncio.run(engine.run(replay(sub_packets, sub_labels, speed=speed)))
    summary = engine.stats.summary()
    p99_us = summary["latency_p99_us"]

    # Control: identical paced replay with the deadline off — batches
    # wait for size alone, so light-load latency balloons.
    control = AsyncStreamEngine(
        TimedPipeline(pipeline, per_batch_s=DEVICE_PER_BATCH_S / 3),
        tracker(),
        batch_size=BATCH_SIZE,
        drop_policy="block",
        infer_workers=INFER_WORKERS,
    )
    asyncio.run(control.run(replay(sub_packets, sub_labels, speed=speed)))
    control_p99_us = control.stats.summary()["latency_p99_us"]

    budget_us = (MAX_LATENCY_US + DEVICE_PER_BATCH_S / 3 * 1e6
                 + 15000.0)  # deadline + service + scheduling slack
    lines += [
        f"paced replay ({speed:.0f}x, deadline {MAX_LATENCY_US:.0f} us): "
        f"p50 {summary['latency_p50_us']:.0f} us  "
        f"p95 {summary['latency_p95_us']:.0f} us  "
        f"p99 {p99_us:.0f} us",
        f"same replay, no deadline (size-only batching): "
        f"p99 {control_p99_us:.0f} us",
        f"deadline flushes: {summary['deadline_flushes']} / "
        f"{summary['batches']} batches (mean {summary['mean_batch']:.1f} rows)",
    ]
    if not args.smoke:
        if p99_us > budget_us:
            failures.append(
                f"latency leg: p99 {p99_us:.0f} us exceeds budget "
                f"{budget_us:.0f} us")
        if p99_us * 3 > control_p99_us:
            failures.append(
                f"latency leg: deadline p99 {p99_us:.0f} us is not well "
                f"below the size-only p99 {control_p99_us:.0f} us")

    verdict = "PASS" if not failures else "FAIL: " + "; ".join(failures)
    lines += ["", verdict]
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "serving.txt")
    with open(out_path, "w") as handle:
        handle.write(text + "\n")
    print(f"(written to {out_path})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
