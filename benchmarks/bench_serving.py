#!/usr/bin/env python3
"""Sync vs async serving on the botnet flowmarker workload.

Five legs, one workload (per-packet botnet detection over interleaved
P2P flows, conversation state in a :class:`FlowmarkerTracker`):

1. **raw** — functional simulation only (``predict`` returns
   instantly).  There is nothing to overlap, so this leg just shows the
   async engine's host overhead is near parity with the sync loop.
2. **device overlap** — both paths drive the *same*
   :class:`TimedPipeline` device model (a per-batch host<->device round
   trip, as when the model runs on the switch and the host talks to its
   agent).  The sync processor serializes extract -> service; the async
   engine overlaps extraction with up to ``--infer-workers`` batches in
   flight, which is where the >= 1.5x throughput comes from.  Block
   mode: predictions and stream counters stay bit-identical to sync.
3. **latency bound** — paced replay with ``--max-latency-us``
   deadline micro-batching: measured p99 must respect the deadline plus
   device service and scheduling slack.
4. **priority lanes** — the same stream flooded through a deliberately
   overloaded engine with an 8:1 two-lane DRR ingress: the
   high-priority lane's p99 must sit measurably below the bulk lane's,
   and the ring-buffered queue-depth series shows *when* the bulk lane
   saturated.
5. **hitless swap** — a mid-stream ``swap_pipeline`` between two
   trained detectors in block mode: zero dropped items, and the output
   is exactly old-pipeline predictions up to a micro-batch boundary,
   new-pipeline predictions after it.

Run:  PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

``--smoke`` shrinks the workload and skips the wall-clock assertions
(CI runs it as a blocking job; correctness checks — bit-identity,
hitless swap, lane ordering — hold in both modes).  The full run is
the reportable benchmark.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_json_result  # noqa: E402

from repro.backends.taurus import TaurusBackend
from repro.datasets import load_botnet
from repro.datasets.botnet import flow_label, generate_botnet_flows
from repro.eval.baselines import train_baseline_dnn
from repro.runtime import FlowmarkerTracker, StreamProcessor
from repro.serving import AsyncStreamEngine, TimedPipeline, replay

#: Emulated host<->device round trip per inference batch (seconds).  A
#: PCIe/agent RPC to the switch is hundreds of microseconds to a few
#: milliseconds; both sync and async legs pay exactly this model.
DEVICE_PER_BATCH_S = 1.5e-3
BATCH_SIZE = 256
INFER_WORKERS = 4
MAX_LATENCY_US = 2000.0
#: Required sync->async speedup on the device-overlap leg.  Bare-metal
#: dev boxes measure 1.5-1.6x; containerized hosts pay more per event-
#: loop wakeup (the raw leg shows the host overhead), so the gate sits
#: where the overlap win is still unambiguous but machine noise is not.
SPEEDUP_TARGET = 1.3

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def build_workload(n_train_flows: int, n_stream_flows: int, seed: int = 13):
    dataset = load_botnet(n_train_flows=n_train_flows, n_test_flows=2,
                          seed=seed, per_packet_test=False)
    net, scaler = train_baseline_dnn("bd", dataset, seed=0)
    pipeline = TaurusBackend().compile_model(net, scaler=scaler, name="bd")
    flows = generate_botnet_flows(n_stream_flows, seed=99)
    tagged = []
    for flow in flows:
        label = flow_label(flow)
        for packet in flow:
            tagged.append((packet.timestamp, packet, label))
    tagged.sort(key=lambda item: item[0])
    packets = [item[1] for item in tagged]
    labels = [item[2] for item in tagged]
    return pipeline, packets, labels


def tracker():
    return FlowmarkerTracker(max_conversations=4096)


class CostlyExtractor:
    """Flowmarker extraction plus a fixed busy-wait per packet.

    The extraction analogue of :class:`TimedPipeline`: it models a
    heavier feature pipeline (DPI, multi-table lookups) with a
    deterministic per-packet cost, so the priority leg can saturate the
    extract stage — the stage that drains the DRR lanes — without
    depending on how fast this machine happens to hash flowmarkers.
    """

    def __init__(self, inner, per_packet_s: float):
        self.inner = inner
        self.per_packet_s = per_packet_s

    def extract(self, packet):
        row = self.inner.extract(packet)
        end = time.perf_counter() + self.per_packet_s
        while time.perf_counter() < end:
            pass
        return row


def run_sync(pipeline, packets, labels):
    processor = StreamProcessor(pipeline, tracker(), batch_size=BATCH_SIZE)
    start = time.perf_counter()
    predictions = processor.process(packets, labels)
    return time.perf_counter() - start, predictions, processor.stats


def run_async(pipeline, packets, labels, infer_workers=INFER_WORKERS):
    engine = AsyncStreamEngine(
        pipeline, tracker(), batch_size=BATCH_SIZE,
        drop_policy="block", infer_workers=infer_workers,
    )
    start = time.perf_counter()
    predictions = engine.process(packets, labels)
    return time.perf_counter() - start, predictions, engine.stats


def best_of(fn, repeats: int):
    best = None
    for _ in range(repeats):
        result = fn()
        if best is None or result[0] < best[0]:
            best = result
    return best


def stream_counters(stats):
    return (stats.packets, stats.class_counts, stats.correct,
            stats.labeled, stats.confusion)


SPARK = " ▁▂▃▄▅▆▇█"


def sparkline(stats, stage: str, width: int = 64) -> str:
    """Render one queue's ring-buffered depth series as a sparkline."""
    series = stats.queues.get(stage)
    if series is None or len(series) == 0:
        return f"{stage:<10} (no samples)"
    _, values = series.samples()
    buckets = np.array_split(values, min(width, len(values)))
    peak = max(series.max, 1.0)
    chars = "".join(
        SPARK[int(round(float(b.max()) / peak * (len(SPARK) - 1)))]
        for b in buckets if len(b)
    )
    return f"{stage:<10} |{chars}| peak {int(series.max)}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, no hard assertions")
    args = parser.parse_args(argv)

    if args.smoke:
        n_train, n_stream, repeats = 60, 300, 1
    else:
        n_train, n_stream, repeats = 150, 1500, 3
    pipeline, packets, labels = build_workload(n_train, n_stream)
    lines = [
        f"Serving benchmark — botnet flowmarker workload "
        f"({len(packets)} packets, batch={BATCH_SIZE}, "
        f"device={DEVICE_PER_BATCH_S * 1e3:.1f} ms/batch, "
        f"infer_workers={INFER_WORKERS})",
        "-" * 74,
    ]
    failures = []

    # Leg 1: raw functional simulation (host overhead parity check).
    sync_s, sync_pred, sync_stats = best_of(
        lambda: run_sync(pipeline, packets, labels), repeats)
    async_s, async_pred, async_stats = best_of(
        lambda: run_async(pipeline, packets, labels), repeats)
    raw_ratio = sync_s / async_s
    identical = np.array_equal(np.asarray(sync_pred), np.asarray(async_pred))
    lines += [
        f"{'raw sync (no device model)':<44}{sync_s * 1e3:>10.1f} ms",
        f"{'raw async':<44}{async_s * 1e3:>10.1f} ms   ({raw_ratio:.2f}x)",
    ]
    if not identical:
        failures.append("raw leg: async predictions diverged from sync")

    # Leg 2: device service overlap (the headline speedup).
    timed_sync_s, ts_pred, ts_stats = best_of(
        lambda: run_sync(TimedPipeline(pipeline, per_batch_s=DEVICE_PER_BATCH_S),
                         packets, labels), repeats)
    timed_async_s, ta_pred, ta_stats = best_of(
        lambda: run_async(TimedPipeline(pipeline, per_batch_s=DEVICE_PER_BATCH_S),
                          packets, labels), repeats)
    speedup = timed_sync_s / timed_async_s
    bit_identical = (
        np.array_equal(np.asarray(ts_pred), np.asarray(ta_pred))
        and stream_counters(ts_stats) == stream_counters(ta_stats)
    )
    lines += [
        f"{'device sync (serialized service)':<44}{timed_sync_s * 1e3:>10.1f} ms",
        f"{'device async (batches in flight)':<44}{timed_async_s * 1e3:>10.1f} ms"
        f"   ({speedup:.2f}x)",
        f"block-mode predictions + counters bit-identical: {bit_identical}",
        f"async throughput: {len(packets) / timed_async_s:,.0f} pkt/s "
        f"(sync {len(packets) / timed_sync_s:,.0f} pkt/s)",
    ]
    if not bit_identical:
        failures.append("device leg: block mode was not bit-identical")
    if not args.smoke and speedup < SPEEDUP_TARGET:
        failures.append(
            f"device leg: speedup {speedup:.2f}x < target {SPEEDUP_TARGET}x")

    # Leg 3: deadline micro-batching under paced replay.  Light load on
    # purpose (a couple of thousand packets per second): the deadline is
    # what bounds latency here, not the batch size.
    subset_n = min(len(packets), 3000 if args.smoke else 6000)
    sub_packets, sub_labels = packets[:subset_n], labels[:subset_n]
    span = sub_packets[-1].timestamp - sub_packets[0].timestamp
    target_duration = 1.5 if args.smoke else 2.4
    speed = max(1.0, span / target_duration)
    engine = AsyncStreamEngine(
        TimedPipeline(pipeline, per_batch_s=DEVICE_PER_BATCH_S / 3),
        tracker(),
        batch_size=BATCH_SIZE,
        max_latency=MAX_LATENCY_US * 1e-6,
        drop_policy="block",
        infer_workers=INFER_WORKERS,
    )
    import asyncio

    asyncio.run(engine.run(replay(sub_packets, sub_labels, speed=speed)))
    summary = engine.stats.summary()
    p99_us = summary["latency_p99_us"]

    # Control: identical paced replay with the deadline off — batches
    # wait for size alone, so light-load latency balloons.
    control = AsyncStreamEngine(
        TimedPipeline(pipeline, per_batch_s=DEVICE_PER_BATCH_S / 3),
        tracker(),
        batch_size=BATCH_SIZE,
        drop_policy="block",
        infer_workers=INFER_WORKERS,
    )
    asyncio.run(control.run(replay(sub_packets, sub_labels, speed=speed)))
    control_p99_us = control.stats.summary()["latency_p99_us"]

    budget_us = (MAX_LATENCY_US + DEVICE_PER_BATCH_S / 3 * 1e6
                 + 15000.0)  # deadline + service + scheduling slack
    lines += [
        f"paced replay ({speed:.0f}x, deadline {MAX_LATENCY_US:.0f} us): "
        f"p50 {summary['latency_p50_us']:.0f} us  "
        f"p95 {summary['latency_p95_us']:.0f} us  "
        f"p99 {p99_us:.0f} us",
        f"same replay, no deadline (size-only batching): "
        f"p99 {control_p99_us:.0f} us",
        f"deadline flushes: {summary['deadline_flushes']} / "
        f"{summary['batches']} batches (mean {summary['mean_batch']:.1f} rows)",
    ]
    if not args.smoke:
        if p99_us > budget_us:
            failures.append(
                f"latency leg: p99 {p99_us:.0f} us exceeds budget "
                f"{budget_us:.0f} us")
        if p99_us * 3 > control_p99_us:
            failures.append(
                f"latency leg: deadline p99 {p99_us:.0f} us is not well "
                f"below the size-only p99 {control_p99_us:.0f} us")

    # Leg 4: priority lanes under overload.  An 8:1 DRR ingress fed by
    # an unpaced flood, with extraction (the stage that drains the
    # lanes) as the saturated bottleneck: ~1/8 of conversations ride the
    # high-priority lane and are drained 8x per DRR round, so their
    # queueing delay — and therefore their p99 — stays far below the
    # bulk lane, which backpressure pins at the occupancy ceiling.
    hi_share = 8

    def lane_of(packet):
        return 0 if (packet.src_ip ^ packet.dst_ip) % hi_share == 0 else 1

    # The leg probes scheduler behaviour, not scale: a fixed-size flood
    # keeps the saturation regime (and the expected lane gap) identical
    # across smoke and full runs.
    lane_n = min(len(packets), 6000)
    lanes_engine = AsyncStreamEngine(
        pipeline,
        CostlyExtractor(tracker(), per_packet_s=20e-6),
        batch_size=64,
        queue_depth=2048,
        drop_policy="tail-drop",
        infer_workers=2,
        priorities=(8, 1),
        lane_of=lane_of,
        extract_quantum=32,
    )
    lanes_engine.process(packets[:lane_n], labels[:lane_n])
    lane_stats = lanes_engine.stats
    hi = lane_stats.lane_latency.get(0)
    lo = lane_stats.lane_latency.get(1)
    if hi is None or lo is None or hi.count == 0 or lo.count == 0:
        failures.append("priority leg: a lane saw no traffic")
    else:
        hi_p99_us = hi.percentile(99) * 1e6
        lo_p99_us = lo.percentile(99) * 1e6
        lines += [
            "",
            f"priority lanes (weights 8:1, tail-drop, extraction "
            f"saturated): {lane_stats.packets} served / "
            f"{lane_stats.dropped} dropped",
            f"  hi lane: p50 {hi.percentile(50) * 1e6:>8.0f} us   "
            f"p99 {hi_p99_us:>8.0f} us   ({hi.count} pkts, "
            f"{lane_stats.lane_drops.get(0, 0)} dropped)",
            f"  lo lane: p50 {lo.percentile(50) * 1e6:>8.0f} us   "
            f"p99 {lo_p99_us:>8.0f} us   ({lo.count} pkts, "
            f"{lane_stats.lane_drops.get(1, 0)} dropped)",
            "  queue-depth series (ring buffer, time left->right):",
            "    " + sparkline(lane_stats, "lane0"),
            "    " + sparkline(lane_stats, "lane1"),
        ]
        if hi_p99_us * 2 > lo_p99_us:
            failures.append(
                f"priority leg: hi-lane p99 {hi_p99_us:.0f} us is not "
                f"measurably below lo-lane p99 {lo_p99_us:.0f} us")

    # Leg 5: hitless pipeline swap.  Block mode, mid-stream CAS to a
    # second trained detector: nothing may drop, and the output must be
    # pipeline-A predictions up to one micro-batch boundary and
    # pipeline-B predictions after it.
    swap_n = min(len(packets), 2000 if args.smoke else 6000)
    swap_packets, swap_labels = packets[:swap_n], labels[:swap_n]
    dataset_b = load_botnet(n_train_flows=60 if args.smoke else 150,
                            n_test_flows=2, seed=29, per_packet_test=False)
    net_b, scaler_b = train_baseline_dnn("bd", dataset_b, seed=1)
    pipeline_b = TaurusBackend().compile_model(net_b, scaler=scaler_b, name="bd2")

    swap_engine = AsyncStreamEngine(
        pipeline, tracker(), batch_size=BATCH_SIZE, drop_policy="block",
        infer_workers=INFER_WORKERS,
    )

    async def swapped_source():
        count = 0
        async for item in replay(swap_packets, swap_labels):
            yield item
            count += 1
            if count == swap_n // 2:
                swap_engine.swap_pipeline(pipeline_b)

    swap_out = np.asarray(asyncio.run(swap_engine.run(swapped_source())))
    # Offline references: the same rows through each pipeline whole.
    offline_tracker = tracker()
    rows = np.stack([offline_tracker.extract(p) for p in swap_packets])
    ref_a = np.asarray(pipeline.predict(rows))
    ref_b = np.asarray(pipeline_b.predict(rows))
    boundaries = range(0, swap_n + 1, BATCH_SIZE)
    flip_at = next(
        (k for k in boundaries
         if np.array_equal(swap_out, np.concatenate([ref_a[:k], ref_b[k:]]))),
        None,
    )
    swap_stats = swap_engine.stats
    lines += [
        "",
        f"hitless swap (block mode, {swap_n} packets, swap at "
        f"~{swap_n // 2}): {swap_stats.swaps} swap, "
        f"{swap_stats.dropped} dropped, {len(swap_out)} served",
        f"  output == pipelineA[:k] + pipelineB[k:] at batch boundary "
        f"k={flip_at}",
    ]
    if len(swap_out) != swap_n or swap_stats.dropped != 0:
        failures.append("swap leg: items were dropped across the swap")
    if flip_at is None or not (0 < flip_at < swap_n):
        failures.append(
            "swap leg: output does not split cleanly between the two "
            "pipelines at a micro-batch boundary")
    if np.array_equal(ref_a, ref_b):
        failures.append("swap leg: the two pipelines are indistinguishable")

    verdict = "PASS" if not failures else "FAIL: " + "; ".join(failures)
    lines += ["", verdict]
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "serving.txt")
    with open(out_path, "w") as handle:
        handle.write(text + "\n")
    json_path = write_json_result(
        "serving",
        config={"smoke": args.smoke, "batch_size": BATCH_SIZE,
                "infer_workers": INFER_WORKERS,
                "device_per_batch_s": DEVICE_PER_BATCH_S,
                "max_latency_us": MAX_LATENCY_US,
                "speedup_target": SPEEDUP_TARGET,
                "packets": len(packets)},
        metrics={"verdict": verdict, "failures": failures,
                 "raw_sync_s": sync_s, "raw_async_s": async_s,
                 "device_sync_s": timed_sync_s,
                 "device_async_s": timed_async_s,
                 "device_speedup": speedup,
                 "device_bit_identical": bit_identical,
                 "deadline_p99_us": p99_us,
                 "swap_dropped": swap_stats.dropped,
                 "swap_flip_at": flip_at},
    )
    print(f"(written to {out_path}; summary {json_path})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
