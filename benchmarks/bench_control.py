#!/usr/bin/env python3
"""Fleet control plane under live traffic: gated rollout + auto-rollback.

One fleet, four legs, all through the real HTTP control plane
(:class:`ControlServer` on localhost, driven by :class:`ControlClient`)
while every worker keeps serving a looping botnet replay:

1. **gated rolling deploy** — upgrade the whole fleet from v0 to v1
   mid-traffic, one worker at a time, each gated on its own pre- vs
   post-swap telemetry window.  Every worker must upgrade; nothing may
   drop.
2. **conflict** — a second deploy issued while a rollout is in flight
   must be rejected with HTTP 409, and must not disturb the rollout.
3. **regression auto-rollback** — deploy a deliberately slow candidate
   (a :class:`TimedPipeline` adding a fat per-batch device delay).  The
   first worker's post-swap p99 blows the gate, the controller rolls
   *that worker* back automatically and aborts the rollout: the rest of
   the fleet never sees the bad pipeline.  This is asserted — the
   report must say ``regressed``, the worker must be back on v1, and
   the remaining workers must be untouched.
4. **instant rollback** — ``POST /rollback`` reverts a healthy worker
   to its previous pipeline with zero drops.
5. **observability scrape** — ``GET /metrics`` is hit mid-rollout and
   after it; both bodies must parse as valid Prometheus text exposition,
   counters must be monotone between the scrapes, a label value packed
   with quotes/backslashes/newlines must round-trip the wire intact,
   and the deploy/settle spans must be visible on ``GET /trace``.  The
   bench forces ``REPRO_OBS=1`` on itself so these gates are
   deterministic.

Throughout: block-mode ingress, so the zero-drop gate is meaningful —
``enqueued == packets + dropped`` must hold on every worker once the
stream drains, and total drops must be exactly 0.

Run:  PYTHONPATH=src python benchmarks/bench_control.py [--smoke]

``--smoke`` shrinks the fleet and the trace; every correctness gate
(upgrade, 409, asserted auto-rollback, conservation) holds in both
modes, so CI runs it as a blocking job.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import os
import sys

# Leg 5 needs span counters on: force before repro.obs caches a tracer,
# and keep the trace sink under results/ rather than the caller's cwd.
os.environ["REPRO_OBS"] = "1"
os.environ.setdefault("REPRO_OBS_DIR", os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "obs"))

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import write_json_result  # noqa: E402

from repro.backends.taurus import TaurusBackend
from repro.control import (
    ControlClient,
    ControlServer,
    DeployConflict,
    FleetController,
    FleetWorker,
    RegressionGate,
)
from repro.datasets import load_botnet
from repro.datasets.botnet import flow_label, generate_botnet_flows
from repro.eval.baselines import train_baseline_dnn
from repro.obs import get_registry, parse_prometheus
from repro.runtime import FlowmarkerTracker
from repro.serving import AsyncStreamEngine, TimedPipeline

BATCH_SIZE = 32
MAX_LATENCY_US = 5000.0
#: Offered load per worker (packets/s) — comfortably under capacity so
#: the pre-swap baseline is healthy queueing, not saturation.
RATE_PPS = 2000.0
#: Per-batch device delay of the deliberately bad candidate; at ~60
#: batches/s offered this is far beyond capacity, so post-swap latency
#: explodes past any sane gate.
SLOW_PER_BATCH_S = 0.25

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def train_pipeline(name: str, n_train_flows: int, seed: int):
    dataset = load_botnet(n_train_flows=n_train_flows, n_test_flows=2,
                          seed=seed, per_packet_test=False)
    net, scaler = train_baseline_dnn("bd", dataset, seed=seed)
    return TaurusBackend().compile_model(net, scaler=scaler, name=name)


def build_trace(n_flows: int, seed: int):
    flows = generate_botnet_flows(n_flows, seed=seed)
    tagged = sorted(
        ((p.timestamp, p, flow_label(f)) for f in flows for p in f),
        key=lambda item: item[0],
    )
    packets = [item[1] for item in tagged]
    labels = [item[2] for item in tagged]
    return packets, labels


async def looping_traffic(packets, labels, stop: asyncio.Event):
    """Replay the trace in a loop at ~RATE_PPS, timestamps kept monotonic."""
    span = (packets[-1].timestamp - packets[0].timestamp + 1.0
            if len(packets) > 1 else 1.0)
    chunk = max(1, int(RATE_PPS // 100))
    pause = chunk / RATE_PPS
    lap = 0
    while not stop.is_set():
        shift = lap * span
        sent = 0
        for packet, label in zip(packets, labels):
            if stop.is_set():
                return
            if shift:
                packet = dataclasses.replace(
                    packet, timestamp=packet.timestamp + shift)
            yield (packet, label)
            sent += 1
            if sent % chunk == 0:
                await asyncio.sleep(pause)
        lap += 1


async def run_bench(args, lines: list, failures: list,
                    obs_summary: dict) -> dict:
    n_workers = 2 if args.smoke else 3
    n_train = 60 if args.smoke else 150
    n_flows = 50 if args.smoke else 120

    v0 = train_pipeline("bd-v0", n_train, seed=13)
    v1 = train_pipeline("bd-v1", n_train, seed=29)
    v_slow = TimedPipeline(v1, per_batch_s=SLOW_PER_BATCH_S)
    packets, labels = build_trace(n_flows, seed=99)

    stop = asyncio.Event()
    workers = []
    for index in range(n_workers):
        engine = AsyncStreamEngine(
            v0, FlowmarkerTracker(max_conversations=4096),
            batch_size=BATCH_SIZE, max_latency=MAX_LATENCY_US * 1e-6,
            queue_depth=1024, drop_policy="block",
        )
        workers.append(FleetWorker(f"w{index}", engine, version="v0"))
    gate = RegressionGate(latency_factor=2.5, latency_floor_s=0.05,
                          min_batches=4, settle_s=10.0)
    controller = FleetController(workers, gate=gate)
    controller.register_pipeline("v1", v1)
    controller.register_pipeline("v-slow", v_slow)

    for worker in workers:
        worker.attach(asyncio.create_task(
            worker.engine.run(looping_traffic(packets, labels, stop)),
            name=f"bench-{worker.name}",
        ))
    server = ControlServer(controller)
    port = await server.start()
    client = ControlClient(port=port)
    lines.append(f"fleet: {n_workers} workers x bd, {len(packets)} packets "
                 f"per lap at {RATE_PPS:.0f} pkt/s, controller on :{port}")

    try:
        await asyncio.sleep(1.5)  # build the pre-swap telemetry window

        # Leg 1: gated rolling deploy v0 -> v1 under live traffic.
        report = await client.deploy("v1")
        lines.append(
            f"deploy v1: ok={report['ok']} upgraded={report['upgraded']}")
        if not report["ok"] or report["upgraded"] != [w.name for w in workers]:
            failures.append(f"rolling deploy did not upgrade the fleet: "
                            f"{report['reason']}")
        for worker in workers:
            if worker.engine.pipeline is not v1:
                failures.append(f"{worker.name} is not serving v1 after deploy")

        # Legs 2+3: a bad candidate mid-traffic, with a competing deploy.
        # The slow rollout holds the controller for >= min_batches slow
        # batches, so the concurrent deploy must observe the conflict.
        slow_task = asyncio.create_task(client.deploy("v-slow"))
        await asyncio.sleep(0.3)
        got_conflict = False
        try:
            await client.deploy("v1")
        except DeployConflict as exc:
            got_conflict = True
            lines.append(f"concurrent deploy: 409 ({exc})")
        if not got_conflict:
            failures.append("concurrent deploy was not rejected with 409")

        # Leg 5a: scrape /metrics while the slow rollout is in flight.
        # The in-progress deploy must already be visible (the op counter
        # bumps at lock-acquire time), and the body must be strictly
        # parseable Prometheus text.
        try:
            scrape_mid = parse_prometheus(await client.metrics())
        except Exception as exc:
            scrape_mid = {}
            failures.append(f"mid-rollout /metrics did not parse: {exc}")
        ops_mid = sum(
            value for (name, labels), value in scrape_mid.items()
            if name == "repro_control_ops_total"
            and ("op", "deploy") in labels
        )
        lines.append(f"mid-rollout scrape: {len(scrape_mid)} samples, "
                     f"deploy ops counter {ops_mid:.0f}")
        if ops_mid < 2:  # leg 1's deploy + the in-flight slow deploy
            failures.append(
                f"mid-rollout scrape shows {ops_mid:.0f} deploy ops, "
                f"expected >= 2 (the in-flight rollout must be visible)")
        served_workers = {
            labels for (name, labels) in scrape_mid
            if name == "repro_serving_packets_total"
        }
        if len(served_workers) != n_workers:
            failures.append(
                f"scrape exposes {len(served_workers)} workers' serving "
                f"counters, expected {n_workers}")

        report = await slow_task
        first = workers[0]
        outcome = report["workers"].get(first.name, {})
        verdict = outcome.get("verdict") or {}
        lines.append(
            f"deploy v-slow: ok={report['ok']} aborted_at="
            f"{report['aborted_at']} reason={report['reason']}")
        if report["ok"]:
            failures.append("slow deploy was not aborted")
        if report["rolled_back"] != [first.name]:
            failures.append(
                f"expected exactly {first.name} rolled back, got "
                f"{report['rolled_back']}")
        if not verdict.get("regressed"):
            failures.append("auto-rollback was not regression-triggered "
                            f"(verdict: {verdict})")
        else:
            pre = verdict["pre"]["latency_p99_s"] * 1e3
            post = verdict["post"]["latency_p99_s"] * 1e3
            lines.append(f"  gate: pre p99 {pre:.1f} ms -> post p99 "
                         f"{post:.1f} ms triggered rollback")
        if first.engine.pipeline is not v1 or first.version != "v1":
            failures.append("regressed worker was not rolled back to v1")
        for worker in workers[1:]:
            if worker.engine.pipeline is not v1:
                failures.append(
                    f"{worker.name} was touched by the aborted rollout")

        # Leg 4: instant rollback of the last healthy worker (its last
        # swap was v0 -> v1, so the revert lands on v0).
        last = workers[-1]
        rollback = await client.rollback(workers=[last.name])
        lines.append(f"rollback {last.name}: {rollback}")
        if rollback["reverted"] != [last.name] or last.engine.pipeline is not v0:
            failures.append("instant rollback did not restore v0")

        fleet = await client.fleet()
        totals = fleet["totals"]
        lines.append(f"fleet totals mid-run: {totals}")
        if totals["dropped"] != 0:
            failures.append(f"fleet dropped {totals['dropped']} packets")

        # Leg 5b: post-rollout scrape — counters monotone vs the
        # mid-rollout scrape, a hostile label value survives the wire,
        # and the deploy/settle/rollback spans reached /trace.
        get_registry().counter(
            "repro_bench_probe_total", "label-escaping probe",
            labels=("note",),
        ).labels(note='quote " slash \\ newline \n done').inc()
        try:
            scrape_end = parse_prometheus(await client.metrics())
        except Exception as exc:
            scrape_end = {}
            failures.append(f"post-rollout /metrics did not parse: {exc}")
        regressions = [
            name for (name, labels), value in scrape_mid.items()
            if name.endswith("_total")
            and value > scrape_end.get((name, labels), float("-inf"))
        ]
        if regressions:
            failures.append(
                f"counters moved backwards between scrapes: {regressions}")
        probe = [
            dict(labels)["note"] for (name, labels) in scrape_end
            if name == "repro_bench_probe_total"
        ]
        if probe != ['quote " slash \\ newline \n done']:
            failures.append(
                f"label escaping did not round-trip the wire: {probe!r}")
        trace_doc = await client.trace()
        span_names = {event["name"] for event in trace_doc["events"]}
        missing = {"control.deploy", "control.swap", "control.settle",
                   "control.rollback"} - span_names
        if missing:
            failures.append(f"spans missing from GET /trace: {sorted(missing)}")
        lines.append(
            f"post-rollout scrape: {len(scrape_end)} samples monotone, "
            f"{len(trace_doc['events'])} span events on /trace")
        obs_summary["scrape_samples"] = len(scrape_end)
        obs_summary["span_events"] = len(trace_doc["events"])
        obs_summary["deploy_ops"] = ops_mid
    finally:
        stop.set()
        await asyncio.gather(*(w.task for w in workers))
        await server.stop()

    lines.append("")
    worker_metrics = {}
    for worker in workers:
        stats = worker.engine.stats
        summary = stats.summary()
        lines.append(
            f"[{worker.name}] {summary['packets']} packets, "
            f"{summary['swaps']} swaps, {summary['dropped']} dropped, "
            f"p99 {summary['latency_p99_us'] / 1e3:.1f} ms "
            f"(final version {worker.version})")
        worker_metrics[worker.name] = {
            "packets": summary["packets"],
            "swaps": summary["swaps"],
            "dropped": summary["dropped"],
            "latency_p99_us": summary["latency_p99_us"],
            "final_version": worker.version,
        }
        if stats.enqueued != stats.packets + stats.dropped:
            failures.append(
                f"{worker.name}: counters not conserved "
                f"({stats.enqueued} != {stats.packets} + {stats.dropped})")
        if stats.dropped != 0:
            failures.append(f"{worker.name}: dropped {stats.dropped}")
        if stats.packets == 0:
            failures.append(f"{worker.name}: served no traffic")
    return worker_metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet and trace (same correctness gates)")
    args = parser.parse_args(argv)

    lines = [
        "Control-plane benchmark — fleet rollout under live traffic",
        "-" * 74,
    ]
    failures: list = []
    obs_summary: dict = {}
    worker_metrics = asyncio.run(run_bench(args, lines, failures, obs_summary))

    verdict = "PASS" if not failures else "FAIL: " + "; ".join(failures)
    lines += ["", verdict]
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "control.txt")
    with open(out_path, "w") as handle:
        handle.write(text + "\n")
    json_path = write_json_result(
        "control",
        config={"smoke": args.smoke, "batch_size": BATCH_SIZE,
                "rate_pps": RATE_PPS, "slow_per_batch_s": SLOW_PER_BATCH_S},
        metrics={"verdict": verdict, "failures": failures,
                 "workers": worker_metrics, "observability": obs_summary},
    )
    print(f"(written to {out_path}; summary {json_path})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
