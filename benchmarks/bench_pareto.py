"""Extension: the accuracy-vs-resources Pareto frontier (§3's tension).

Not a paper table — the paper resolves the objectives-vs-resources
tension with hard feasibility constraints — but the frontier makes the
underlying trade-off visible: every extra block of CUs buys some F1.
"""

from repro.alchemy import DataLoader, Model, Platforms
from repro.core.pareto import format_front, search_pareto
from repro.datasets import load_iot


def test_pareto_frontier(benchmark, record_result):
    # Traffic classification: the capacity-hungry task (Table 2's largest
    # baseline-vs-generated gap), so the frontier has real extent.
    dataset = load_iot(n_train=1200, n_test=500, seed=11)

    @DataLoader
    def loader():
        return dataset

    spec = Model(
        {
            "optimization_metric": ["f1"],
            "algorithm": ["dnn"],
            "name": "tc_frontier",
            "data_loader": loader,
        }
    )
    platform = Platforms.Taurus().constrain(
        performance={"throughput": 1, "latency": 500},
        resources={"rows": 16, "cols": 16},
    )

    result = benchmark.pedantic(
        lambda: search_pareto(spec, platform, budget=18, warmup=6,
                              train_epochs=15, seed=0),
        rounds=1,
        iterations=1,
    )
    record_result(
        "pareto_frontier", format_front(result),
        config={"budget": 18, "warmup": 6, "train_epochs": 15, "seed": 0},
        metrics={
            "front": [
                {"resource": e.metrics[result["resource_key"]],
                 "objective": e.metrics[result["objective_key"]]}
                for e in result["front"]
            ],
            "resource_key": result["resource_key"],
            "objective_key": result["objective_key"],
        },
    )
    front = result["front"]
    assert len(front) >= 2, "frontier should expose a trade-off, not a point"
    resources = [e.metrics[result["resource_key"]] for e in front]
    objectives = [e.metrics[result["objective_key"]] for e in front]
    # Sorted by resource, the frontier must be strictly improving in the
    # objective (otherwise the cheaper point dominates).
    assert all(a < b for a, b in zip(resources, resources[1:]))
    assert all(a < b for a, b in zip(objectives, objectives[1:]))
    assert all(e.feasible for e in front)
