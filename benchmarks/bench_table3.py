"""Table 3: resource scaling across app-chaining strategies.

Paper's claim: chaining four copies of the AD DNN sequentially, in
parallel, or in a diamond consumes the *same* resources — the chaining
glue folds into already-placed CUs.
"""

from repro.eval.experiments import format_table3, run_table3


def test_table3(benchmark, record_result):
    rows = benchmark.pedantic(
        lambda: run_table3(budget=8, seed=0, quick=True), rounds=1, iterations=1
    )
    record_result("table3", format_table3(rows),
                  config={"budget": 8, "seed": 0, "quick": True},
                  metrics={"rows": rows})
    cus = {row["cus"] for row in rows}
    mus = {row["mus"] for row in rows}
    assert len(cus) == 1, f"CU usage varies across strategies: {cus}"
    assert len(mus) == 1, f"MU usage varies across strategies: {mus}"
    assert all(row["n_models"] == 4 for row in rows)
