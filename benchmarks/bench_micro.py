"""Substrate microbenchmarks: the building blocks' raw throughput.

These are conventional pytest-benchmark kernels (many rounds) covering
the components every compile run leans on: DNN training epochs, the BO
suggest step, the two hardware simulators, and both code generators.
"""

import pytest

from repro.backends.taurus import TaurusBackend
from repro.backends.taurus.ir import lower_network
from repro.backends.taurus.simulator import TaurusSimulator
from repro.backends.taurus.spatial_codegen import generate_spatial
from repro.backends.tofino.bmv2 import MatInterpreter
from repro.backends.tofino.iisy import lower_svm, lower_tree
from repro.backends.tofino.p4_codegen import generate_p4
from repro.bayesopt import BayesianOptimizer, DesignSpace, Integer, Real
from repro.datasets import load_iot, load_nslkdd
from repro.ml import (
    DecisionTreeClassifier,
    LinearSVM,
    NeuralNetwork,
    StandardScaler,
)


@pytest.fixture(scope="module")
def ad():
    return load_nslkdd(n_train=800, n_test=400, seed=7)


@pytest.fixture(scope="module")
def tc():
    return load_iot(n_train=800, n_test=400, seed=11)


@pytest.fixture(scope="module")
def trained(ad):
    scaler = StandardScaler().fit(ad.train_x)
    net = NeuralNetwork([7, 12, 8, 1], seed=0)
    net.fit(scaler.transform(ad.train_x), ad.train_y.astype(float),
            epochs=10, learning_rate=0.01)
    return net, scaler


def test_nn_training_epoch(benchmark, ad, record_bench_json):
    """One epoch of DNN training on the AD dataset (the BO inner loop)."""
    scaler = StandardScaler().fit(ad.train_x)
    X = scaler.transform(ad.train_x)
    y = ad.train_y.astype(float)
    net = NeuralNetwork([7, 16, 8, 1], seed=0)
    benchmark(lambda: net.fit(X, y, epochs=1, learning_rate=0.01))
    record_bench_json("micro_nn_training_epoch", benchmark,
                      layers=[7, 16, 8, 1], n_train=800)


def test_bo_suggest_step(benchmark, record_bench_json):
    """One surrogate-fit + acquisition-argmax step over 30 observations."""
    space = DesignSpace([Integer("a", 0, 50), Integer("b", 0, 50), Real("c", 0, 1)])
    optimizer = BayesianOptimizer(
        space, lambda cfg: float(-(cfg["a"] - 25) ** 2), warmup=5, seed=0
    )
    result = optimizer.run(30)
    benchmark(lambda: optimizer.suggest(result))
    record_bench_json("micro_bo_suggest_step", benchmark,
                      observations=30, warmup=5)


def test_taurus_simulator_throughput(benchmark, trained, ad, record_bench_json):
    """Fixed-point inference of 400 packets through the MapReduce pipeline."""
    net, scaler = trained
    sim = TaurusSimulator(lower_network(net, scaler=scaler))
    benchmark(lambda: sim.predict(ad.test_x))
    record_bench_json("micro_taurus_simulator", benchmark,
                      n_packets=len(ad.test_x))


def test_bmv2_interpreter_throughput(benchmark, tc, record_bench_json):
    """400 packets through a generated SVM match-action pipeline."""
    scaler = StandardScaler().fit(tc.train_x)
    svm = LinearSVM(seed=0, epochs=15).fit(scaler.transform(tc.train_x), tc.train_y)
    interpreter = MatInterpreter(lower_svm(svm, tc.train_x, scaler=scaler))
    benchmark(lambda: interpreter.predict(tc.test_x))
    record_bench_json("micro_bmv2_interpreter", benchmark,
                      n_packets=len(tc.test_x))


def test_spatial_codegen_speed(benchmark, trained, record_bench_json):
    """Emitting the Spatial program for a trained DNN."""
    net, scaler = trained
    program = lower_network(net, scaler=scaler, name="bench")
    benchmark(lambda: generate_spatial(program))
    record_bench_json("micro_spatial_codegen", benchmark)


def test_p4_codegen_speed(benchmark, tc, record_bench_json):
    """Emitting the P4 program for a trained decision tree."""
    scaler = StandardScaler().fit(tc.train_x)
    tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(
        scaler.transform(tc.train_x), tc.train_y
    )
    pipeline = lower_tree(tree, scaler=scaler, name="bench")
    benchmark(lambda: generate_p4(pipeline))
    record_bench_json("micro_p4_codegen", benchmark, max_depth=5)


def test_backend_compile_roundtrip(benchmark, trained, record_bench_json):
    """Full compile_model: lower + codegen + resource/timing estimation."""
    net, scaler = trained
    backend = TaurusBackend()
    benchmark(lambda: backend.compile_model(net, scaler=scaler, name="bench"))
    record_bench_json("micro_backend_compile", benchmark)
