"""N2Net extension: binarized vs fixed-point DNN on the AD task.

The paper positions N2Net's binary networks as the resource-frugal,
accuracy-lossy end of the in-network ML spectrum (§2): "truncating model
weights to a single bit value ... impacts achievable model accuracy; but,
the models can now run at line speed".  This bench quantifies that
trade-off inside our Taurus resource model.
"""

import pytest

from repro.backends.taurus import TaurusBackend
from repro.datasets import load_nslkdd
from repro.eval.baselines import train_baseline_dnn
from repro.ml.bnn import BinarizedNetwork
from repro.ml.metrics import f1_score
from repro.ml.preprocessing import StandardScaler


@pytest.fixture(scope="module")
def ad():
    return load_nslkdd(n_train=1600, n_test=600, seed=7)


def test_bnn_vs_dnn_tradeoff(benchmark, ad, record_result):
    backend = TaurusBackend()

    def run():
        dnn, scaler = train_baseline_dnn("ad", ad, seed=0)
        dnn_pipe = backend.compile_model(dnn, scaler=scaler, name="dnn")
        dnn_f1 = 100 * f1_score(ad.test_y, dnn_pipe.predict(ad.test_x))

        bnn_scaler = StandardScaler().fit(ad.train_x)
        bnn = BinarizedNetwork([ad.n_features, 24, 12, 1], seed=0)
        bnn.fit(bnn_scaler.transform(ad.train_x), ad.train_y,
                epochs=40, learning_rate=0.05)
        bnn_pipe = backend.compile_model(bnn, scaler=bnn_scaler, name="bnn")
        bnn_f1 = 100 * f1_score(ad.test_y, bnn_pipe.predict(ad.test_x))
        return (dnn_f1, dnn_pipe, dnn.n_params), (bnn_f1, bnn_pipe, bnn.n_params)

    (dnn_f1, dnn_pipe, dnn_params), (bnn_f1, bnn_pipe, bnn_params) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    lines = [
        f"{'Variant':<10}{'F1':>8}{'Params':>8}{'CUs':>6}{'MUs':>6}",
        "-" * 38,
        f"{'DNN Q7.8':<10}{dnn_f1:>8.2f}{dnn_params:>8}"
        f"{dnn_pipe.resources['cus']:>6}{dnn_pipe.resources['mus']:>6}",
        f"{'BNN 1-bit':<10}{bnn_f1:>8.2f}{bnn_params:>8}"
        f"{bnn_pipe.resources['cus']:>6}{bnn_pipe.resources['mus']:>6}",
    ]
    record_result(
        "n2net_bnn_vs_dnn", "\n".join(lines),
        config={"seed": 0, "epochs": 40, "learning_rate": 0.05},
        metrics={
            "dnn": {"f1": dnn_f1, "params": dnn_params,
                    "cus": dnn_pipe.resources["cus"],
                    "mus": dnn_pipe.resources["mus"]},
            "bnn": {"f1": bnn_f1, "params": bnn_params,
                    "cus": bnn_pipe.resources["cus"],
                    "mus": bnn_pipe.resources["mus"]},
        },
    )
    # The N2Net trade: binary compute is much cheaper per parameter...
    dnn_cus_per_param = dnn_pipe.resources["cus"] / dnn_params
    bnn_cus_per_param = bnn_pipe.resources["cus"] / bnn_params
    assert bnn_cus_per_param < dnn_cus_per_param
    # ...while accuracy takes a hit but stays usable.
    assert bnn_f1 < dnn_f1 + 2.0  # binarization is not magically better
    assert bnn_f1 > 60.0
