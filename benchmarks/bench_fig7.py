"""Figure 7: KMeans V-measure under varying MAT budgets (K1..K5).

Paper's claims: Homunculus generates a KMeans variant for each resource
budget, dropping clusters when tables are scarce; more available MATs
yield an equal-or-better V-measure.
"""

from repro.eval.experiments import format_fig7, run_fig7


def test_fig7_kmeans_vs_mats(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig7(budget=12, seed=0, quick=True), rounds=1, iterations=1
    )
    record_result("fig7", format_fig7(result),
                  config={"budget": 12, "seed": 0, "quick": True},
                  metrics={"series": result["series"]})
    series = result["series"]
    assert set(series) == {f"KMeans{k}" for k in range(1, 6)}
    # Cluster count never exceeds the MAT budget.
    for name, data in series.items():
        assert data["n_clusters"] <= data["mats"]
        assert data["used_mats"] <= data["mats"]
    # More tables -> equal or better final V-measure, strictly better
    # somewhere along the sweep.
    best = [series[f"KMeans{k}"]["best_v"] for k in range(1, 6)]
    assert all(a <= b + 1e-6 for a, b in zip(best, best[1:]))
    assert best[-1] > best[0]
