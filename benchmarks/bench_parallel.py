"""Parallel batched BO evaluation engine: wall-clock speedup microbench.

A Homunculus search is dominated by the black box — every candidate pays
a full train -> lower -> score pass (hundreds of milliseconds to seconds
per config on the paper's workloads) while the suggest step costs tens
of milliseconds.  This bench models that regime directly: two algorithm
families, budget 20 each, with a 0.3 s evaluation cost, searched

* serially (one ``BayesianOptimizer.run`` per family, back to back), and
* in parallel (families concurrent, each a ``ParallelEvaluator`` with
  ``n_workers=4`` speculative batches),

then asserts the parallel engine is >= 2x faster *and* bit-for-bit
identical in its evaluation histories — the speedup is free.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro.bayesopt import BayesianOptimizer, ParallelEvaluator
from repro.bayesopt.space import DesignSpace, Integer, Real

#: Simulated train -> lower -> score cost per candidate (conservative:
#: real DNN candidates cost seconds).
EVAL_COST_S = 0.4
BUDGET = 20
N_WORKERS = 4


def _make_family(shift: int):
    """One synthetic algorithm family: its design space and black box."""
    space = DesignSpace(
        [Integer("a", 0, 50), Integer("b", 0, 50), Real("c", 0.0, 1.0)]
    )

    def objective(config):
        time.sleep(EVAL_COST_S)  # the train/lower/score pass
        return float(
            -((config["a"] - shift) ** 2) - (config["b"] - 10) ** 2 + config["c"]
        )

    return space, objective


def _histories(results):
    return [[(e.config, e.objective) for e in r.history] for r in results]


def test_parallel_engine_speedup(record_result):
    families = [_make_family(25), _make_family(40)]

    start = time.perf_counter()
    serial = [
        BayesianOptimizer(space, fn, warmup=5, seed=3).run(BUDGET)
        for space, fn in families
    ]
    serial_s = time.perf_counter() - start

    def run_parallel(family):
        space, fn = family
        return ParallelEvaluator(
            space, fn, n_workers=N_WORKERS, warmup=5, seed=3
        ).run(BUDGET)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(families)) as pool:
        parallel = list(pool.map(run_parallel, families))
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s
    identical = _histories(serial) == _histories(parallel)
    text = "\n".join(
        [
            f"{'Configuration':<42}{'Wall clock':>12}",
            "-" * 54,
            f"{'serial (2 families x budget 20)':<42}{serial_s:>11.2f}s",
            f"{f'parallel (n_workers={N_WORKERS}, batched)':<42}{parallel_s:>11.2f}s",
            "",
            f"speedup: {speedup:.2f}x",
            f"histories bit-identical to serial: {identical}",
        ]
    )
    record_result(
        "parallel_engine", text,
        config={"budget": BUDGET, "n_workers": N_WORKERS,
                "eval_cost_s": EVAL_COST_S, "families": 2, "seed": 3},
        metrics={"serial_s": serial_s, "parallel_s": parallel_s,
                 "speedup": speedup, "identical": identical},
    )

    assert identical, "parallel engine diverged from the serial trajectory"
    assert speedup >= 2.0, f"expected >= 2x speedup, got {speedup:.2f}x"
