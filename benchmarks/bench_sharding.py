"""Shard scheduler: wall-clock speedup + bit-identity + chaos macrobench.

The distributed claim is two-sided — faster, and *exactly* the same
answer — so this bench gates both.  A four-model compile (two anomaly-
detection and two traffic-classification DNN searches, the paper's
"parallel candidate runs" stretched across models) runs

* serially: one ``repro.generate`` over the four scheduled models, and
* sharded: the same run as a :class:`~repro.distrib.runspec.RunSpec`
  partitioned into 4 shards, one worker **subprocess** per shard (the
  real local backend — separate interpreters, JSON wire format, the
  same path a remote machine would execute),

then asserts ≥ 1.8x wall clock and per-model winning configurations
bit-identical to the serial report.  Subprocess startup (interpreter +
numpy import + dataset synthesis) is charged to the sharded side — the
speedup is measured end to end, not per trial.

Shard trials are real CPU work (DNN training), so the speedup gate
needs real cores: on hosts with fewer than ``N_SHARDS`` CPUs the gate
is reported but not enforced (the PR-3 convention for
machine-dependent wall-clock gates), while the bit-identity gate —
the half of the claim hardware cannot excuse — always is.

The **chaos leg** (``-k chaos``, the blocking CI smoke) extends the
bit-identity claim through the fault-tolerance layer: a two-drainer
work-queue run in which one drainer dies hard (``os._exit``, the
SIGKILL equivalent) between claim and complete, *and* another unit
records a real failure.  The reaper must requeue the orphaned claim,
the driver must re-post the failed unit under its next attempt name,
and the merged run must still match the serial ``generate`` bit for
bit.
"""

import os
import tempfile
import time

import repro
from repro.distrib import (
    DatasetRef,
    ModelEntry,
    RunSpec,
    SubprocessLauncher,
    WorkQueueLauncher,
    run_sharded,
)
from repro.distrib.worker import CHAOS_FAIL_ENV, CHAOS_KILL_ENV

BUDGET = 10
WARMUP = 4
EPOCHS = 25
SEED = 0
N_SHARDS = 4
MIN_SPEEDUP = 1.8

#: Four single-family DNN searches — four balanced work units.
MODELS = [
    ("ad_a", "ad", {"n_train": 900, "n_test": 300, "seed": 7}),
    ("ad_b", "ad", {"n_train": 900, "n_test": 300, "seed": 107}),
    ("tc_a", "tc", {"n_train": 900, "n_test": 300, "seed": 11}),
    ("tc_b", "tc", {"n_train": 900, "n_test": 300, "seed": 111}),
]


def usable_cores() -> int:
    if hasattr(os, "process_cpu_count"):  # 3.13+
        return os.process_cpu_count() or 1
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def make_spec() -> RunSpec:
    return RunSpec(
        target="taurus",
        models=[
            ModelEntry(
                name=name,
                dataset=DatasetRef.for_app(app, **kwargs),
                algorithms=("dnn",),
            )
            for name, app, kwargs in MODELS
        ],
        budget=BUDGET,
        warmup=WARMUP,
        train_epochs=EPOCHS,
        seed=SEED,
    )


def winners(report) -> dict:
    return {
        name: (model.algorithm, tuple(sorted(model.best_config.items())),
               model.objective)
        for name, model in report.models.items()
    }


def test_sharded_generate_speedup(record_result):
    spec = make_spec()

    start = time.perf_counter()
    serial_report = repro.generate(
        spec.build_platform(), budget=BUDGET, warmup=WARMUP,
        train_epochs=EPOCHS, seed=SEED,
    )
    serial_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="bench-shards-") as shard_dir:
        start = time.perf_counter()
        sharded = run_sharded(
            make_spec(), shards=N_SHARDS,
            launcher=SubprocessLauncher(), shard_dir=shard_dir,
        )
        sharded_s = time.perf_counter() - start

    speedup = serial_s / sharded_s
    identical = winners(serial_report) == winners(sharded.report)
    stats = sharded.stats
    cores = usable_cores()
    gate_active = cores >= N_SHARDS
    gate_note = (
        f"enforced (>= {MIN_SPEEDUP}x)" if gate_active
        else f"reported only ({cores} core(s) < {N_SHARDS} shards — "
             f"no parallel speedup is physically available)"
    )
    text = "\n".join(
        [
            f"{'Configuration':<46}{'Wall clock':>12}",
            "-" * 58,
            f"{'serial generate (4 models x budget %d)' % BUDGET:<46}"
            f"{serial_s:>11.2f}s",
            f"{f'sharded ({N_SHARDS} subprocess shards)':<46}{sharded_s:>11.2f}s",
            "",
            f"speedup: {speedup:.2f}x  [{gate_note}]",
            f"winning configs bit-identical to serial: {identical}",
            f"shard critical path: {stats['critical_path_s']:.2f}s "
            f"of {stats['total_work_s']:.2f}s total work",
            "per-shard: " + ", ".join(
                f"#{s['shard']}={s['elapsed_s']:.2f}s" for s in stats["per_shard"]
            ),
        ]
    )
    record_result(
        "sharding", text,
        config={"budget": BUDGET, "warmup": WARMUP, "epochs": EPOCHS,
                "seed": SEED, "shards": N_SHARDS},
        metrics={"serial_s": serial_s, "sharded_s": sharded_s,
                 "speedup": speedup, "identical": identical,
                 "critical_path_s": stats["critical_path_s"],
                 "total_work_s": stats["total_work_s"],
                 "gate_active": gate_active},
    )

    assert identical, "sharded winners diverged from the serial report"
    if gate_active:
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x speedup, got {speedup:.2f}x"
        )


# --------------------------------------------------------------------------- #
# chaos leg: drainer killed mid-run + a recorded failure, still bit-identical
# --------------------------------------------------------------------------- #
CHAOS_BUDGET = 4
CHAOS_WARMUP = 2
CHAOS_EPOCHS = 4
CHAOS_STALE_AFTER = 2.0
CHAOS_HEARTBEAT = 0.3


def make_chaos_spec() -> RunSpec:
    # Two cheap families (no NN training): unit-0000 = decision_tree,
    # unit-0001 = svm.  Small enough for a blocking CI job.
    return RunSpec(
        target="tofino",
        models=[
            ModelEntry(
                name="tc",
                dataset=DatasetRef.for_app("tc", n_train=200, n_test=80, seed=11),
                algorithms=("decision_tree", "svm"),
            )
        ],
        budget=CHAOS_BUDGET,
        warmup=CHAOS_WARMUP,
        train_epochs=CHAOS_EPOCHS,
        seed=SEED,
    )


def test_chaos_drainer_death_preserves_bit_identity(record_result):
    spec = make_chaos_spec()
    serial_report = repro.generate(
        spec.build_platform(), budget=CHAOS_BUDGET, warmup=CHAOS_WARMUP,
        train_epochs=CHAOS_EPOCHS, seed=SEED,
    )

    saved_env = {
        key: os.environ.get(key) for key in (CHAOS_KILL_ENV, CHAOS_FAIL_ENV)
    }
    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as scratch:
        # Whichever drainer claims unit 0 dies hard between claim and
        # complete (orphaned claim -> reaper requeue); unit 1's first
        # attempt records a failure (failed/ entry -> driver re-post).
        os.environ[CHAOS_KILL_ENV] = f"unit-0000.a0@{scratch}/kill-marker"
        os.environ[CHAOS_FAIL_ENV] = f"unit-0001.a0@{scratch}/fail-marker"
        start = time.perf_counter()
        try:
            chaotic = run_sharded(
                make_chaos_spec(), shards=2,
                launcher=WorkQueueLauncher(
                    drainers=2, mode="subprocess", timeout=600,
                    stale_after=CHAOS_STALE_AFTER, heartbeat=CHAOS_HEARTBEAT,
                ),
                shard_dir=os.path.join(scratch, "shards"),
                max_retries=2,
            )
        finally:
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        chaotic_s = time.perf_counter() - start
        kill_fired = os.path.exists(os.path.join(scratch, "kill-marker"))
        fail_fired = os.path.exists(os.path.join(scratch, "fail-marker"))

    ft = chaotic.stats["fault_tolerance"]
    identical = winners(serial_report) == winners(chaotic.report)
    text = "\n".join(
        [
            f"{'Chaos leg (2 drainers, 1 killed mid-run)':<46}"
            f"{chaotic_s:>11.2f}s",
            f"injected hard kill fired: {kill_fired}",
            f"injected recorded failure fired: {fail_fired}",
            f"driver retries: {ft['retries']} "
            f"(task launches {ft['task_launches']} for {ft['tasks']} tasks)",
            f"winning configs bit-identical to serial: {identical}",
        ]
    )
    record_result(
        "sharding_chaos", text,
        config={"shards": 2, "drainers": 2, "max_retries": 2,
                "stale_after": CHAOS_STALE_AFTER,
                "heartbeat": CHAOS_HEARTBEAT},
        metrics={"chaotic_s": chaotic_s, "kill_fired": kill_fired,
                 "fail_fired": fail_fired, "identical": identical,
                 "retries": ft["retries"],
                 "task_launches": ft["task_launches"],
                 "tasks": ft["tasks"]},
    )

    assert kill_fired, "the drainer hard-kill never fired"
    assert fail_fired, "the recorded-failure injection never fired"
    assert ft["retries"] >= 1, "the failed unit was never re-posted"
    assert identical, "chaotic run diverged from the serial report"
