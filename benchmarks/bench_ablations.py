"""Ablations of the design choices DESIGN.md calls out.

* BO vs uniform random search on the actual AD design problem (the value
  of the surrogate, §3.2.3),
* fixed-point width vs post-quantization accuracy (the Q7.8 choice),
* per-feature table bins vs SVM/MAT fidelity (the IIsy quantization knob).
"""

import numpy as np
import pytest

from repro.backends.taurus import TaurusBackend
from repro.backends.tofino.bmv2 import MatInterpreter
from repro.backends.tofino.iisy import lower_svm
from repro.bayesopt import BayesianOptimizer, RandomSearchOptimizer
from repro.core.designspace_builder import build_design_space
from repro.core.evaluator import ModelEvaluator
from repro.datasets import load_iot, load_nslkdd
from repro.alchemy import DataLoader, Model
from repro.ml import LinearSVM, NeuralNetwork, StandardScaler
from repro.ml.quantization import FixedPointFormat


@pytest.fixture(scope="module")
def ad():
    return load_nslkdd(n_train=700, n_test=300, seed=7)


@pytest.fixture(scope="module")
def tc():
    return load_iot(n_train=700, n_test=300, seed=11)


@pytest.fixture(scope="module")
def ad_evaluator(ad):
    @DataLoader
    def loader():
        return ad

    spec = Model({"optimization_metric": ["f1"], "algorithm": ["dnn"],
                  "name": "ad", "data_loader": loader})
    backend = TaurusBackend()
    constraints = {
        "performance": {"throughput": 1, "latency": 500},
        "resources": {"cus": 256, "mus": 256},
    }
    return ModelEvaluator(spec, ad, "dnn", backend, constraints,
                          seed=0, train_epochs=10)


def test_ablation_bo_vs_random(benchmark, ad_evaluator, record_result, ad):
    """BO finds an equal-or-better feasible AD model than random search."""
    space = build_design_space("dnn", ad, TaurusBackend(), {"cus": 256, "mus": 256})

    def run_both():
        bo = BayesianOptimizer(space, ad_evaluator.evaluate, warmup=4, seed=1)
        rs = RandomSearchOptimizer(space, ad_evaluator.evaluate, seed=1)
        return bo.run(10), rs.run(10)

    bo_result, rs_result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        f"BO     best F1: {bo_result.best_objective:.4f} "
        f"(feasible {bo_result.feasibility_rate():.0%})",
        f"Random best F1: {rs_result.best_objective:.4f} "
        f"(feasible {rs_result.feasibility_rate():.0%})",
    ]
    record_result(
        "ablation_bo_vs_random", "\n".join(lines),
        config={"budget": 10, "warmup": 4, "seed": 1},
        metrics={
            "bo": {"best_f1": bo_result.best_objective,
                   "feasibility_rate": bo_result.feasibility_rate()},
            "random": {"best_f1": rs_result.best_objective,
                       "feasibility_rate": rs_result.feasibility_rate()},
        },
    )
    assert bo_result.best is not None
    # Same budget: the model-guided search should not lose to uniform
    # sampling (ties allowed on this small space).
    assert bo_result.best_objective >= rs_result.best_objective - 0.02


def test_ablation_fixed_point_width(benchmark, ad, record_result):
    """Post-quantization agreement vs fixed-point fraction width."""
    scaler = StandardScaler().fit(ad.train_x)
    net = NeuralNetwork([7, 12, 8, 1], seed=0)
    net.fit(scaler.transform(ad.train_x), ad.train_y.astype(float),
            epochs=15, learning_rate=0.01)
    float_pred = net.predict(scaler.transform(ad.test_x))
    backend = TaurusBackend()

    def sweep():
        rows = []
        for frac_bits in (2, 4, 6, 8, 10):
            fmt = FixedPointFormat(integer_bits=15 - frac_bits, fraction_bits=frac_bits)
            pipe = backend.compile_model(net, scaler=scaler, fmt=fmt, name="q")
            agreement = float(np.mean(pipe.predict(ad.test_x) == float_pred))
            rows.append((frac_bits, agreement))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(f"Q{15 - fb}.{fb}: agreement {agr:.3f}" for fb, agr in rows)
    record_result(
        "ablation_fixed_point", text,
        config={"fraction_bits": [2, 4, 6, 8, 10], "epochs": 15},
        metrics={"agreement": {f"Q{15 - fb}.{fb}": agr
                               for fb, agr in rows}},
    )
    agreements = [agr for _, agr in rows]
    # More fraction bits never hurt much, and the Q7.8 default is >= 97%.
    assert agreements[-2] > 0.97
    assert agreements[-1] >= agreements[0]


def test_ablation_feature_bins(benchmark, tc, record_result):
    """SVM/MAT agreement vs per-feature range-entry count (IIsy knob)."""
    scaler = StandardScaler().fit(tc.train_x)
    svm = LinearSVM(seed=0, epochs=20).fit(scaler.transform(tc.train_x), tc.train_y)
    float_pred = svm.predict(scaler.transform(tc.test_x))

    def sweep():
        rows = []
        for bins in (4, 16, 64, 128):
            pipeline = lower_svm(svm, tc.train_x, scaler=scaler, bins=bins)
            hw = MatInterpreter(pipeline).predict(tc.test_x)
            agreement = float(np.mean(hw == float_pred))
            rows.append((bins, pipeline.total_entries, agreement))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"{bins:>4} bins/feature: {entries:>5} entries, agreement {agr:.3f}"
        for bins, entries, agr in rows
    )
    record_result(
        "ablation_feature_bins", text,
        config={"bins": [4, 16, 64, 128], "epochs": 20},
        metrics={"sweep": [{"bins": bins, "entries": entries,
                            "agreement": agr}
                           for bins, entries, agr in rows]},
    )
    agreements = [agr for _, _, agr in rows]
    assert agreements[-1] >= agreements[0]  # finer tables track the model better
    assert agreements[-1] > 0.9
